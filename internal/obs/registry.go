package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// kind discriminates the metric families a registry can hold.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Registry is a concurrency-safe collection of metric families. The zero
// value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	sink     atomic.Value // Sink; trace-line destination for spans
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// family is one named metric family: all children share the name, help,
// type, label names, and (for histograms) bucket layout.
type family struct {
	name       string
	help       string
	kind       kind
	labelNames []string
	buckets    []float64      // histogram upper bounds (no +Inf)
	fn         func() float64 // kindGaugeFunc only

	mu       sync.RWMutex
	children map[string]any // label-value key -> *Counter / *Gauge / *Histogram
}

// labelKey joins label values into a map key. \xff cannot appear in UTF-8
// text, so the join is unambiguous.
func labelKey(values []string) string {
	return strings.Join(values, "\xff")
}

// family returns the named family, creating it if absent. An existing
// family must match the requested kind and label arity exactly.
func (r *Registry) family(name, help string, k kind, labelNames []string, buckets []float64) *family {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f == nil {
		r.mu.Lock()
		if f = r.families[name]; f == nil {
			f = &family{
				name:       name,
				help:       help,
				kind:       k,
				labelNames: append([]string(nil), labelNames...),
				buckets:    append([]float64(nil), buckets...),
				children:   map[string]any{},
			}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.kind != k || len(f.labelNames) != len(labelNames) {
		panic(fmt.Sprintf("obs: metric %q re-registered as %v/%d labels (was %v/%d)",
			name, k, len(labelNames), f.kind, len(f.labelNames)))
	}
	return f
}

// child returns the metric for the given label values, creating it via
// make on first use.
func (f *family) child(values []string, make func() any) any {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d",
			f.name, len(f.labelNames), len(values)))
	}
	key := labelKey(values)
	f.mu.RLock()
	c := f.children[key]
	f.mu.RUnlock()
	if c != nil {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c = f.children[key]; c == nil {
		c = make()
		f.children[key] = c
	}
	return c
}

// --- Counter ---

// Counter is a monotonically increasing count. All methods are safe for
// concurrent use and lock-free.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n < 0 panics: counters only go up).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic("obs: counter decrement")
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Counter returns the unlabeled counter family name, creating it if
// absent.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, kindCounter, nil, nil)
	return f.child(nil, func() any { return &Counter{} }).(*Counter)
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec returns the labeled counter family name, creating it if
// absent.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{r.family(name, help, kindCounter, labelNames, nil)}
}

// With returns the child counter for the given label values.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.child(labelValues, func() any { return &Counter{} }).(*Counter)
}

// --- Gauge ---

// Gauge is an instantaneous float64 value. All methods are safe for
// concurrent use and lock-free.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (negative to subtract) with a CAS loop.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		new_ := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, new_) {
			return
		}
	}
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Gauge returns the unlabeled gauge family name, creating it if absent.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, kindGauge, nil, nil)
	return f.child(nil, func() any { return &Gauge{} }).(*Gauge)
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec returns the labeled gauge family name, creating it if absent.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, kindGauge, labelNames, nil)}
}

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.child(labelValues, func() any { return &Gauge{} }).(*Gauge)
}

// GaugeFunc registers a callback-backed gauge: fn is evaluated at scrape
// time, so existing counters (e.g. the allocation memo's private atomics)
// can be exported with zero hot-path cost. Re-registering the same name
// replaces the callback.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.family(name, help, kindGaugeFunc, nil, nil)
	f.mu.Lock()
	f.fn = fn
	f.mu.Unlock()
}

// --- Histogram ---

// DefBuckets is the default latency bucket layout, in seconds: 1µs–10s in
// a 1-10 exponential ladder with a mid-decade point, wide enough for both
// in-process kernel batches and network round-trips.
var DefBuckets = []float64{
	1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1, 5, 10,
}

// ExpBuckets returns count buckets starting at start and multiplying by
// factor, for metrics whose range the default ladder does not fit.
func ExpBuckets(start, factor float64, count int) []float64 {
	if start <= 0 || factor <= 1 || count < 1 {
		panic("obs: ExpBuckets needs start > 0, factor > 1, count >= 1")
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// Histogram counts observations into fixed buckets. Observe is lock-free:
// a bucket scan plus three atomic adds.
type Histogram struct {
	upper   []float64       // sorted upper bounds; +Inf is implicit
	counts  []atomic.Uint64 // len(upper)+1; last is the +Inf bucket
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(buckets []float64) *Histogram {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("obs: histogram buckets must be strictly increasing")
		}
	}
	return &Histogram{
		upper:  buckets,
		counts: make([]atomic.Uint64, len(buckets)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		new_ := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, new_) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values so far.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Histogram returns the unlabeled histogram family name, creating it if
// absent with the given bucket upper bounds (nil means DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.family(name, help, kindHistogram, nil, buckets)
	return f.child(nil, func() any { return newHistogram(f.buckets) }).(*Histogram)
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec returns the labeled histogram family name, creating it if
// absent with the given bucket upper bounds (nil means DefBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVec{r.family(name, help, kindHistogram, labelNames, buckets)}
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(labelValues ...string) *Histogram {
	return v.f.child(labelValues, func() any { return newHistogram(v.f.buckets) }).(*Histogram)
}

// --- Snapshot ---

// Snapshot is a point-in-time copy of a registry, suitable for JSON
// encoding or programmatic inspection.
type Snapshot struct {
	Families []FamilySnapshot `json:"families"`
}

// FamilySnapshot is one family's state.
type FamilySnapshot struct {
	Name    string           `json:"name"`
	Type    string           `json:"type"`
	Help    string           `json:"help,omitempty"`
	Metrics []MetricSnapshot `json:"metrics"`
}

// MetricSnapshot is one child's state. Value is set for counters and
// gauges; Count/Sum/Buckets for histograms.
type MetricSnapshot struct {
	Labels  map[string]string `json:"labels,omitempty"`
	Value   float64           `json:"value"`
	Count   uint64            `json:"count,omitempty"`
	Sum     float64           `json:"sum,omitempty"`
	Buckets []BucketCount     `json:"buckets,omitempty"`
}

// BucketCount is a cumulative histogram bucket: observations <= LE. The
// implicit +Inf bucket is the metric's Count.
type BucketCount struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// Snapshot copies the registry's current state, with families and
// children in deterministic (sorted) order.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var snap Snapshot
	for _, f := range fams {
		fs := FamilySnapshot{Name: f.name, Type: f.kind.String(), Help: f.help}
		if f.kind == kindGaugeFunc {
			f.mu.RLock()
			fn := f.fn
			f.mu.RUnlock()
			v := 0.0
			if fn != nil {
				v = fn()
			}
			fs.Metrics = []MetricSnapshot{{Value: v}}
			snap.Families = append(snap.Families, fs)
			continue
		}
		f.mu.RLock()
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, key := range keys {
			ms := MetricSnapshot{}
			if len(f.labelNames) > 0 {
				values := strings.Split(key, "\xff")
				ms.Labels = make(map[string]string, len(f.labelNames))
				for i, ln := range f.labelNames {
					ms.Labels[ln] = values[i]
				}
			}
			switch c := f.children[key].(type) {
			case *Counter:
				ms.Value = float64(c.Value())
			case *Gauge:
				ms.Value = c.Value()
			case *Histogram:
				ms.Count = c.Count()
				ms.Sum = c.Sum()
				cum := uint64(0)
				ms.Buckets = make([]BucketCount, len(c.upper))
				for i, ub := range c.upper {
					cum += c.counts[i].Load()
					ms.Buckets[i] = BucketCount{LE: ub, Count: cum}
				}
			}
			fs.Metrics = append(fs.Metrics, ms)
		}
		f.mu.RUnlock()
		snap.Families = append(snap.Families, fs)
	}
	return snap
}
