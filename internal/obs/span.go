package obs

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// Sink receives one structured trace line per finished span, already
// formatted as space-separated key=value pairs. A nil sink disables trace
// emission; the duration histogram is always recorded.
type Sink func(line string)

// SetTraceSink installs the registry's trace sink (nil to disable).
func (r *Registry) SetTraceSink(s Sink) { r.sink.Store(s) }

// SetTraceSink installs the Default registry's trace sink.
func SetTraceSink(s Sink) { Default.SetTraceSink(s) }

func (r *Registry) traceSink() Sink {
	if v := r.sink.Load(); v != nil {
		return v.(Sink)
	}
	return nil
}

// spanSeconds returns the registry's span-duration histogram family.
func (r *Registry) spanSeconds() *HistogramVec {
	return r.HistogramVec("fedshare_span_seconds",
		"Span durations by span name.", DefBuckets, "span")
}

// Span is one timed operation. Create with StartSpan, attach context with
// Attr, and finish with End; End records the duration into the
// fedshare_span_seconds{span=name} histogram and, when a trace sink is
// installed, emits one key=value line. A Span is used by a single
// goroutine.
type Span struct {
	name  string
	start time.Time
	reg   *Registry
	attrs []string
}

// StartSpan starts a span against the registry.
func (r *Registry) StartSpan(name string) *Span {
	return &Span{name: name, start: time.Now(), reg: r}
}

// StartSpan starts a span against the Default registry.
func StartSpan(name string) *Span { return Default.StartSpan(name) }

// Attr attaches a key=value pair to the span's trace line. Values are
// rendered with %v; strings containing spaces are quoted. Attrs are only
// formatted when a sink is installed, so the call is cheap otherwise.
func (s *Span) Attr(key string, value any) *Span {
	if s.reg.traceSink() == nil {
		return s
	}
	v := fmt.Sprintf("%v", value)
	if strings.ContainsAny(v, " \t\n\"") {
		v = fmt.Sprintf("%q", v)
	}
	s.attrs = append(s.attrs, key+"="+v)
	return s
}

// End finishes the span and returns its duration.
func (s *Span) End() time.Duration {
	d := time.Since(s.start)
	s.reg.spanSeconds().With(s.name).Observe(d.Seconds())
	if sink := s.reg.traceSink(); sink != nil {
		line := "span=" + s.name + " dur=" + d.String()
		if len(s.attrs) > 0 {
			line += " " + strings.Join(s.attrs, " ")
		}
		sink(line)
	}
	return d
}

// --- Leveled logging ---

// LogLevel orders log severities.
type LogLevel int32

// Levels, least to most severe.
const (
	LogDebug LogLevel = iota
	LogInfo
	LogError
)

// ParseLogLevel maps "debug"/"info"/"error" to a level.
func ParseLogLevel(s string) (LogLevel, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LogDebug, nil
	case "info":
		return LogInfo, nil
	case "error":
		return LogError, nil
	}
	return LogInfo, fmt.Errorf("obs: unknown log level %q (want debug, info, or error)", s)
}

func (l LogLevel) String() string {
	switch l {
	case LogDebug:
		return "debug"
	case LogInfo:
		return "info"
	case LogError:
		return "error"
	}
	return fmt.Sprintf("level(%d)", int32(l))
}

// Logger is a minimal leveled logger over a printf-style output function.
// It exists so daemon diagnostics and span trace lines share one
// formatting path: every line goes through logf with a level= prefix, and
// TraceSink adapts the debug level to the span Sink interface. The level
// can be changed concurrently with logging.
type Logger struct {
	min atomic.Int32
	out func(format string, args ...interface{})
}

// NewLogger returns a logger writing through out (e.g. log.Printf) at the
// given minimum level. A nil out discards everything.
func NewLogger(out func(string, ...interface{}), min LogLevel) *Logger {
	l := &Logger{out: out}
	l.min.Store(int32(min))
	return l
}

// SetLevel changes the minimum emitted level.
func (l *Logger) SetLevel(min LogLevel) { l.min.Store(int32(min)) }

// Level returns the current minimum level.
func (l *Logger) Level() LogLevel { return LogLevel(l.min.Load()) }

func (l *Logger) logf(lvl LogLevel, format string, args ...interface{}) {
	if l.out == nil || lvl < l.Level() {
		return
	}
	l.out("level="+lvl.String()+" "+format, args...)
}

// Debugf logs at debug level.
func (l *Logger) Debugf(format string, args ...interface{}) { l.logf(LogDebug, format, args...) }

// Infof logs at info level.
func (l *Logger) Infof(format string, args ...interface{}) { l.logf(LogInfo, format, args...) }

// Errorf logs at error level.
func (l *Logger) Errorf(format string, args ...interface{}) { l.logf(LogError, format, args...) }

// TraceSink adapts the logger's debug level as a span trace sink: spans
// appear in the same stream, with the same level= framing, as ordinary
// diagnostics. Returns nil (no sink) unless debug is enabled at call time.
func (l *Logger) TraceSink() Sink {
	if l.Level() > LogDebug {
		return nil
	}
	return func(line string) { l.Debugf("%s", line) }
}
