// Package obs is a dependency-free observability subsystem: a
// concurrency-safe metrics registry (counters, gauges, fixed-bucket
// histograms, labeled families), an HTTP exposition handler serving the
// Prometheus text format and a JSON snapshot, and a lightweight span API
// that records duration histograms and optionally emits structured
// key=value trace lines through a pluggable sink.
//
// Design goals, in order:
//
//  1. Zero cost when idle: a registered metric is a couple of words of
//     memory; nobody pays for scraping machinery until a scrape happens.
//  2. Atomic hot path: Counter.Inc, Gauge.Set, and Histogram.Observe are
//     lock-free atomic operations so they can sit inside the coalition
//     kernel, the allocation memo, and the sweep pool without perturbing
//     the benchmarks they measure.
//  3. Idempotent registration: looking up a family that already exists
//     returns the existing one, so independent subsystems (and multiple
//     sfa.Server instances in one test process) can share a registry
//     without coordination. Re-registering a name with a different type
//     or label arity panics — that is always a programmer error.
//
// The package depends only on the standard library and imports no other
// fedshare package, so every layer of the system can instrument itself.
// Metric access goes through a Registry; the process-wide Default registry
// is what fedd exposes over HTTP and fedsim snapshots at end of run.
package obs

// Default is the process-wide registry. Library packages register their
// instrumentation here; fedd serves it via Handler, and fedsim -json
// snapshots it at end of run.
var Default = NewRegistry()
