package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanRecordsHistogram(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("solve")
	time.Sleep(time.Millisecond)
	d := sp.End()
	if d < time.Millisecond {
		t.Errorf("duration = %v", d)
	}
	h := r.spanSeconds().With("solve")
	if h.Count() != 1 {
		t.Errorf("histogram count = %d, want 1", h.Count())
	}
	if h.Sum() < 0.001 {
		t.Errorf("histogram sum = %g", h.Sum())
	}
}

func TestSpanTraceSink(t *testing.T) {
	r := NewRegistry()
	var mu sync.Mutex
	var lines []string
	r.SetTraceSink(func(line string) {
		mu.Lock()
		lines = append(lines, line)
		mu.Unlock()
	})
	r.StartSpan("embed").Attr("slice", "exp1").Attr("sites", 5).Attr("note", "two words").End()
	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 1 {
		t.Fatalf("lines = %v", lines)
	}
	l := lines[0]
	if !strings.HasPrefix(l, "span=embed dur=") {
		t.Errorf("line = %q", l)
	}
	for _, want := range []string{"slice=exp1", "sites=5", `note="two words"`} {
		if !strings.Contains(l, want) {
			t.Errorf("line %q missing %q", l, want)
		}
	}
}

func TestSpanNoSinkIsQuiet(t *testing.T) {
	r := NewRegistry()
	// Attrs on a sink-less span are dropped without formatting.
	sp := r.StartSpan("quiet").Attr("k", "v")
	if len(sp.attrs) != 0 {
		t.Error("attrs should not be retained without a sink")
	}
	sp.End()
	if r.spanSeconds().With("quiet").Count() != 1 {
		t.Error("histogram must still record without a sink")
	}
}

func TestLoggerLevels(t *testing.T) {
	var mu sync.Mutex
	var got []string
	out := func(format string, args ...interface{}) {
		mu.Lock()
		got = append(got, fmt.Sprintf(format, args...))
		mu.Unlock()
	}
	l := NewLogger(out, LogInfo)
	l.Debugf("hidden %d", 1)
	l.Infof("shown %d", 2)
	l.Errorf("loud %d", 3)
	mu.Lock()
	if len(got) != 2 || got[0] != "level=info shown 2" || got[1] != "level=error loud 3" {
		t.Errorf("got = %q", got)
	}
	mu.Unlock()

	if l.TraceSink() != nil {
		t.Error("trace sink must be nil above debug level")
	}
	l.SetLevel(LogDebug)
	sink := l.TraceSink()
	if sink == nil {
		t.Fatal("trace sink must exist at debug level")
	}
	sink("span=x dur=1ms")
	mu.Lock()
	defer mu.Unlock()
	if got[len(got)-1] != "level=debug span=x dur=1ms" {
		t.Errorf("sink line = %q", got[len(got)-1])
	}
}

func TestParseLogLevel(t *testing.T) {
	for s, want := range map[string]LogLevel{"debug": LogDebug, "Info": LogInfo, "ERROR": LogError} {
		got, err := ParseLogLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLogLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLogLevel("chatty"); err == nil {
		t.Error("bad level must error")
	}
}

func TestNilLoggerOutput(t *testing.T) {
	l := NewLogger(nil, LogDebug)
	l.Infof("dropped") // must not panic
	if s := l.TraceSink(); s != nil {
		s("also dropped")
	}
}
