package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func buildTestRegistry() *Registry {
	r := NewRegistry()
	r.Counter("fedshare_test_total", "Total test events.").Add(3)
	r.CounterVec("fedshare_req_total", "Requests by method.", "method").With("sfa.Ping").Add(2)
	r.Gauge("fedshare_depth", "Queue depth.").Set(4)
	r.GaugeFunc("fedshare_cb", "Callback gauge.", func() float64 { return 1.5 })
	h := r.HistogramVec("fedshare_lat_seconds", "Latency.", []float64{0.01, 0.1}, "op")
	h.With("solve").Observe(0.005)
	h.With("solve").Observe(0.05)
	h.With("solve").Observe(5)
	return r
}

func TestPrometheusText(t *testing.T) {
	var sb strings.Builder
	if err := buildTestRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP fedshare_test_total Total test events.",
		"# TYPE fedshare_test_total counter",
		"fedshare_test_total 3",
		`fedshare_req_total{method="sfa.Ping"} 2`,
		"# TYPE fedshare_depth gauge",
		"fedshare_depth 4",
		"fedshare_cb 1.5",
		"# TYPE fedshare_lat_seconds histogram",
		`fedshare_lat_seconds_bucket{op="solve",le="0.01"} 1`,
		`fedshare_lat_seconds_bucket{op="solve",le="0.1"} 2`,
		`fedshare_lat_seconds_bucket{op="solve",le="+Inf"} 3`,
		`fedshare_lat_seconds_sum{op="solve"} 5.055`,
		`fedshare_lat_seconds_count{op="solve"} 3`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing line %q in output:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("esc_total", "", "x").With("a\"b\\c\nd").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{x="a\"b\\c\nd"} 1`
	if !strings.Contains(sb.String(), want) {
		t.Errorf("escaped line missing; got:\n%s", sb.String())
	}
}

func TestHandlerEndpoints(t *testing.T) {
	srv := httptest.NewServer(buildTestRegistry().Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	if !strings.Contains(sb.String(), "fedshare_test_total 3") {
		t.Errorf("/metrics missing counter:\n%s", sb.String())
	}

	jresp, err := srv.Client().Get(srv.URL + "/metrics.json")
	if err != nil {
		t.Fatal(err)
	}
	defer jresp.Body.Close()
	var snap Snapshot
	if err := json.NewDecoder(jresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	byName := map[string]FamilySnapshot{}
	for _, f := range snap.Families {
		byName[f.Name] = f
	}
	if f, ok := byName["fedshare_test_total"]; !ok || f.Metrics[0].Value != 3 {
		t.Errorf("json counter = %+v", byName["fedshare_test_total"])
	}
	if f, ok := byName["fedshare_lat_seconds"]; !ok || f.Metrics[0].Count != 3 {
		t.Errorf("json histogram = %+v", byName["fedshare_lat_seconds"])
	}
	if f := byName["fedshare_req_total"]; f.Metrics[0].Labels["method"] != "sfa.Ping" {
		t.Errorf("json labels = %+v", byName["fedshare_req_total"])
	}
}

func TestHealthEndpoints(t *testing.T) {
	ready := true
	var mu sync.Mutex
	srv := httptest.NewServer(NewRegistry().HandlerWithHealth(func() bool {
		mu.Lock()
		defer mu.Unlock()
		return ready
	}))
	defer srv.Close()

	status := func(path string) int {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if got := status("/healthz"); got != 200 {
		t.Errorf("/healthz = %d, want 200", got)
	}
	if got := status("/readyz"); got != 200 {
		t.Errorf("/readyz = %d, want 200 while ready", got)
	}
	mu.Lock()
	ready = false
	mu.Unlock()
	// A draining daemon stays alive but stops being ready.
	if got := status("/healthz"); got != 200 {
		t.Errorf("/healthz while draining = %d, want 200", got)
	}
	if got := status("/readyz"); got != 503 {
		t.Errorf("/readyz while draining = %d, want 503", got)
	}
	// The plain Handler has no readiness hook: always ready.
	plain := httptest.NewServer(NewRegistry().Handler())
	defer plain.Close()
	resp, err := plain.Client().Get(plain.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("plain /readyz = %d, want 200", resp.StatusCode)
	}
}

func TestSnapshotRoundTripsThroughJSON(t *testing.T) {
	// Every value in a snapshot must be JSON-encodable (no NaN/Inf):
	// histograms keep +Inf implicit as Count for exactly this reason.
	b, err := json.Marshal(buildTestRegistry().Snapshot())
	if err != nil {
		t.Fatalf("snapshot not JSON-encodable: %v", err)
	}
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		t.Fatal(err)
	}
}

func TestVersionEndpoint(t *testing.T) {
	srv := httptest.NewServer(NewRegistry().HandlerWithHealth(nil))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/version")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/version = %d, want 200", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("/version Content-Type = %q", ct)
	}
	var v BuildInfo
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("/version body not JSON: %v", err)
	}
	// A test binary always knows the Go toolchain that built it; module and
	// version may degrade to placeholders outside `go build` but stay set.
	if v.Go == "" {
		t.Error("/version reports empty Go version")
	}
	if v.Module == "" || v.Version == "" {
		t.Errorf("/version missing module/version: %+v", v)
	}
}
