package obs

import (
	"runtime/debug"
	"sync"
)

// BuildInfo is the /version document: what binary is answering, read from
// the Go build metadata stamped into it (runtime/debug.ReadBuildInfo), so
// it needs no ldflags plumbing and is correct for any `go build`.
type BuildInfo struct {
	// Module is the main module path (e.g. "fedshare").
	Module string `json:"module"`
	// Version is the main module version ("(devel)" for a plain source build).
	Version string `json:"version"`
	// Go is the toolchain that built the binary.
	Go string `json:"go"`
	// Revision and Time are the VCS commit stamp, when the build carried one.
	Revision string `json:"revision,omitempty"`
	Time     string `json:"time,omitempty"`
	// Dirty marks a VCS build with uncommitted changes.
	Dirty bool `json:"dirty,omitempty"`
}

var readVersion = sync.OnceValue(func() BuildInfo {
	info := BuildInfo{Version: "unknown"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	info.Module = bi.Main.Path
	info.Version = bi.Main.Version
	info.Go = bi.GoVersion
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.time":
			info.Time = s.Value
		case "vcs.modified":
			info.Dirty = s.Value == "true"
		}
	}
	return info
})

// Version returns the running binary's build info. The read is done once
// and cached; it never fails (a binary without build info reports version
// "unknown").
func Version() BuildInfo { return readVersion() }
