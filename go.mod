module fedshare

go 1.22
