// Benchmark harness: one benchmark per figure of the paper's evaluation
// (Sec. 4). Each BenchmarkFigN regenerates the figure's full data series;
// the b.N loop measures the cost of the whole experiment, and the first
// iteration's output is checked against the paper's anchor values so a
// benchmark run is also a reproduction run.
//
// Run with:
//
//	go test -bench=. -benchmem
package fedshare_test

import (
	"math"
	"testing"

	"fedshare/internal/coalition"
	"fedshare/internal/core"
	"fedshare/internal/economics"
	"fedshare/internal/figures"
	"fedshare/internal/loss"
	"fedshare/internal/stats"
)

// benchFigure runs a registered figure scenario, failing the benchmark on
// error.
func benchFigure(b *testing.B, id string) *figures.Figure {
	b.Helper()
	f, err := figures.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	return f
}

func anchor(b *testing.B, f *figures.Figure, series string, x, want, tol float64) {
	b.Helper()
	for _, s := range f.Series {
		if s.Name != series {
			continue
		}
		y, ok := s.YAt(x)
		if !ok {
			b.Fatalf("%s: no point at x=%g in %s", f.ID, x, series)
		}
		if math.Abs(y-want) > tol {
			b.Fatalf("%s: %s(%g) = %g, paper shape wants %g (±%g)", f.ID, series, x, y, want, tol)
		}
		return
	}
	b.Fatalf("%s: series %s missing", f.ID, series)
}

// BenchmarkFig2 regenerates the utility-function figure (Fig 2).
func BenchmarkFig2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := benchFigure(b, "fig2")
		if i == 0 {
			anchor(b, f, "d=1.0", 100, 100, 1e-9)
			anchor(b, f, "d=0.8", 40, 0, 0) // below threshold
		}
	}
}

// BenchmarkFig4 regenerates the threshold sweep (Fig 4): the staircase of
// Shapley shares against the flat proportional rule.
func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := benchFigure(b, "fig4")
		if i == 0 {
			anchor(b, f, "pi2", 500, 4.0/13, 1e-9)  // paper: π̂2 = 4/13
			anchor(b, f, "phi1", 1250, 1.0/3, 1e-9) // grand-only equal split
			anchor(b, f, "phi3", 1350, 0, 0)        // infeasible demand
		}
	}
}

// BenchmarkFig4Strict regenerates Fig 4 under the strict-threshold
// convention that matches the paper's worked numbers exactly.
func BenchmarkFig4Strict(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := benchFigure(b, "fig4-strict")
		if i == 0 {
			anchor(b, f, "phi2", 500, 2.0/13, 1e-9) // paper: φ̂2 = 2/13
		}
	}
}

// BenchmarkFig5 regenerates the utility-shape sweep (Fig 5).
func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := benchFigure(b, "fig5")
		if i == 0 {
			// Convexity pulls Shapley toward proportional: by d = 2.5 the
			// facility-3 gap must be small.
			var phi3, pi3 float64
			for _, s := range f.Series {
				if s.Name == "phi3" {
					phi3, _ = s.YAt(2.5)
				}
				if s.Name == "pi3" {
					pi3, _ = s.YAt(2.5)
				}
			}
			if math.Abs(phi3-pi3) > 0.12 {
				b.Fatalf("fig5: phi3-pi3 gap %g at d=2.5, expected convergence", phi3-pi3)
			}
		}
	}
}

// BenchmarkFig6 regenerates the capacity-aware threshold sweep (Fig 6):
// equal L_i·R_i, very different Shapley shares.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := benchFigure(b, "fig6")
		if i == 0 {
			anchor(b, f, "phi1", 0, 1.0/3, 1e-6)
			anchor(b, f, "pi1", 900, 1.0/3, 1e-6)
			anchor(b, f, "phi1", 1250, 1.0/3, 1e-6)
		}
	}
}

// BenchmarkFig7 regenerates the demand-mixture sweep (Fig 7).
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := benchFigure(b, "fig7")
		if i == 0 {
			var lo, hi float64
			for _, s := range f.Series {
				if s.Name == "phi3" {
					lo, _ = s.YAt(0)
					hi, _ = s.YAt(1)
				}
			}
			if hi <= lo {
				b.Fatalf("fig7: phi3 must rise with sigma (%g -> %g)", lo, hi)
			}
		}
	}
}

// BenchmarkFig8 regenerates the demand-volume sweep (Fig 8) including the
// consumption-proportional rule ρ̂.
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := benchFigure(b, "fig8")
		if i == 0 {
			anchor(b, f, "rho3", 5, 8.0/13, 0.05) // low demand: diversity profile
			var rLo, rHi float64
			for _, s := range f.Series {
				if s.Name == "rho3" {
					rLo, _ = s.YAt(5)
					rHi, _ = s.YAt(100)
				}
			}
			if rHi >= rLo {
				b.Fatalf("fig8: rho3 must fall with demand (%g -> %g)", rLo, rHi)
			}
		}
	}
}

// BenchmarkFig9 regenerates the provision-incentive curves (Fig 9).
func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := benchFigure(b, "fig9")
		if i == 0 {
			// Proportional profit at l=0 grows smoothly to L1·R1-level
			// values; Shapley at l=800 must exhibit a threshold jump.
			var maxStep, sumStep float64
			n := 0
			for _, s := range f.Series {
				if s.Name != "phi1,l=800" {
					continue
				}
				for k := 1; k < len(s.Points); k++ {
					d := math.Abs(s.Points[k].Y - s.Points[k-1].Y)
					if d > maxStep {
						maxStep = d
					}
					sumStep += d
					n++
				}
			}
			if n == 0 || maxStep < 3*sumStep/float64(n) {
				b.Fatalf("fig9: missing threshold jump (max %g, mean %g)", maxStep, sumStep/float64(n))
			}
		}
	}
}

// BenchmarkMultiplexing runs the loss-network extension backing Sec. 3.2.1:
// short holding times make federation super-additive via statistical
// multiplexing.
func BenchmarkMultiplexing(b *testing.B) {
	cfg := loss.Config{
		Stations: []loss.Station{
			{Label: "a", Count: 4, Capacity: 1},
			{Label: "b", Count: 4, Capacity: 1},
		},
		Arrivals: []economics.ArrivalSpec{{
			Type: economics.ExperimentType{
				Name: "e", MinLocations: 3, MaxLocations: 3,
				Resources: 1, HoldingTime: 0.1, Shape: 1,
			},
			Rate: 30,
		}},
		Horizon: 500,
		Seed:    7,
	}
	for i := 0; i < b.N; i++ {
		gap, err := loss.SuperadditivityGap(cfg)
		if err != nil {
			b.Fatal(err)
		}
		_ = gap
	}
}

// BenchmarkFigureTables measures the rendering path used by fedsim.
func BenchmarkFigureTables(b *testing.B) {
	f := benchFigure(b, "fig4")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = f.Table()
	}
}

// BenchmarkSeriesOps measures the stats series hot path.
func BenchmarkSeriesOps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var s stats.Series
		for x := 0; x < 100; x++ {
			s.Add(float64(x), float64(x*x))
		}
		if _, ok := s.YAt(50); !ok {
			b.Fatal("missing point")
		}
	}
}

// BenchmarkAblationDiversityPremium measures the design-choice ablation:
// how much share mass the diversity threshold moves relative to the
// capacity-only counterfactual (DESIGN.md's ablation entry).
func BenchmarkAblationDiversityPremium(b *testing.B) {
	demand, err := economics.NewWorkload(economics.DemandClass{
		Type: economics.ExperimentType{
			Name: "e", MinLocations: 500, MaxLocations: math.Inf(1),
			Resources: 1, HoldingTime: 1, Shape: 1,
		},
		Count: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		m, err := core.NewModel([]core.Facility{
			{Name: "F1", Locations: 100, Resources: 1},
			{Name: "F2", Locations: 400, Resources: 1},
			{Name: "F3", Locations: 800, Resources: 1},
		}, demand)
		if err != nil {
			b.Fatal(err)
		}
		ab, err := core.DiversityAblation(m, core.ShapleyPolicy{})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			moved := core.TotalDistortion(ab.ActualShares, ab.NoThresholdShares)
			if moved <= 0.02 {
				b.Fatalf("diversity should move share mass, got %g", moved)
			}
		}
	}
}

// BenchmarkHierarchicalShapley measures the two-level (Owen) division over
// a PLC/PLE(+members)/PLJ hierarchy.
func BenchmarkHierarchicalShapley(b *testing.B) {
	demand, err := economics.NewWorkload(economics.DemandClass{
		Type: economics.ExperimentType{
			Name: "e", MinLocations: 500, MaxLocations: math.Inf(1),
			Resources: 1, HoldingTime: 1, Shape: 1,
		},
		Count: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	groups := []core.AuthorityGroup{
		{Name: "PLC", Members: []core.Facility{{Name: "PLC", Locations: 100, Resources: 1}}},
		{Name: "PLE", Members: []core.Facility{
			{Name: "PLE-core", Locations: 250, Resources: 1},
			{Name: "G-Lab", Locations: 100, Resources: 1},
			{Name: "EmanicsLab", Locations: 50, Resources: 1},
		}},
		{Name: "PLJ", Members: []core.Facility{{Name: "PLJ", Locations: 800, Resources: 1}}},
	}
	for i := 0; i < b.N; i++ {
		hs, err := core.HierarchicalShapley(groups, demand, 0, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			// Quotient consistency with the flat Fig-4 authority shares.
			if math.Abs(hs.Authority[1]-17.0/78) > 1e-9 {
				b.Fatalf("PLE authority share %g, want 17/78", hs.Authority[1])
			}
		}
	}
}

// BenchmarkFigMarket regenerates the extension figure comparing Shapley
// with the combinatorial-auction baseline (Sec. 5).
func BenchmarkFigMarket(b *testing.B) {
	for i := 0; i < b.N; i++ {
		f := benchFigure(b, "fig-market")
		if i == 0 && len(f.Series) != 6 {
			b.Fatalf("fig-market has %d series", len(f.Series))
		}
	}
}

// shapleyBenchTable builds the n-player random Table game shared by the
// kernel-vs-legacy Shapley benchmarks.
func shapleyBenchTable(b *testing.B, n int) *coalition.Table {
	b.Helper()
	rng := stats.NewRand(2024)
	vals := make([]float64, 1<<uint(n))
	for i := 1; i < len(vals); i++ {
		vals[i] = rng.Float64() * 100
	}
	g, err := coalition.NewTable(n, vals)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkShapleyLegacy measures the pre-kernel path: n independent
// per-player subset enumerations through the Game interface.
func BenchmarkShapleyLegacy(b *testing.B) {
	g := shapleyBenchTable(b, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coalition.ShapleyLegacy(g)
	}
}

// BenchmarkShapleyKernel measures the batched coalition-lattice kernel:
// one sequential sweep over the dense value table yielding Shapley and
// Banzhaf together.
func BenchmarkShapleyKernel(b *testing.B) {
	g := shapleyBenchTable(b, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coalition.BatchedValues(g)
	}
}

// BenchmarkShapleyKernelParallel shards the sweep over GOMAXPROCS workers
// (coalition-range parallelism, not per-player).
func BenchmarkShapleyKernelParallel(b *testing.B) {
	g := shapleyBenchTable(b, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		coalition.BatchedValuesParallel(g, 0)
	}
}

// BenchmarkLossNetworkShapley prices facilities by simulated loss-network
// value rates (the paper's Paschalidis–Liu future-work direction): one
// simulation per coalition, Shapley on top.
func BenchmarkLossNetworkShapley(b *testing.B) {
	cfg := loss.Config{
		Stations: []loss.Station{
			{Label: "a", Count: 2, Capacity: 1},
			{Label: "b", Count: 2, Capacity: 1},
			{Label: "c", Count: 6, Capacity: 1},
		},
		Arrivals: []economics.ArrivalSpec{{
			Type: economics.ExperimentType{
				Name: "e", MinLocations: 2, MaxLocations: 2,
				Resources: 1, HoldingTime: 0.5, Shape: 1,
			},
			Rate: 8,
		}},
		Horizon: 200,
		Seed:    41,
	}
	for i := 0; i < b.N; i++ {
		g, err := loss.NewGame(cfg)
		if err != nil {
			b.Fatal(err)
		}
		phi := coalition.Shapley(coalition.NewCache(g))
		if i == 0 {
			if err := coalition.CheckEfficiency(coalition.NewCache(g), phi, 1e-9); err != nil {
				b.Fatal(err)
			}
		}
	}
}
