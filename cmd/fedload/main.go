// Command fedload drives concurrent slice lifecycles against a fedd
// registry and reports throughput and latency, benchmarking the durable
// federation plane end to end.
//
// Each lifecycle is reserve → renew×N → release, all keyed and idempotent:
// renewals re-issue the original reserve key (exercising the server's
// dedup replay path, the protocol's lease-extension idiom), and every call
// goes through the resilient retrying client, so fedload rides through a
// fedd kill -9 + restart mid-run — the recovery path the write-ahead log
// exists for.
//
// Usage:
//
//	fedload -addr 127.0.0.1:7001 -secret fed-secret \
//	    -lifecycles 2000 -workers 32 -renews 1 -ttl 60 \
//	    -label fsync-interval -out BENCH_8.json
//
// With -fault the client dials through a fault-injecting network (dropped
// connections, partial writes, corrupted frames, lost responses) seeded by
// -seed. With -metrics and -expect-executions the run asserts the
// exactly-once identity on the server's counters:
//
//	Δrequests_total{sfa.Reserve} − Δdedup_replays_total{sfa.Reserve} == expected
//
// (run against one daemon incarnation: counters reset on restart, so a
// run that spans a kill -9 verifies instead by re-issuing its keys in a
// second run with -expect-executions 0 — every key must replay, none may
// re-execute). Responses shed by the daemon's -max-inflight admission gate
// are reported separately from transport failures ("shed" in the result
// JSON): shed requests are rejected unexecuted and retried with backoff,
// so an overloaded run still satisfies the exactly-once identity. With
// -verify the run additionally waits for the substrate to return to full
// capacity after the releases and lease expiries.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"fedshare/internal/faultnet"
	"fedshare/internal/obs"
	"fedshare/internal/sfa"
)

type result struct {
	Label      string `json:"label"`
	Addr       string `json:"addr"`
	Lifecycles int    `json:"lifecycles"`
	Workers    int    `json:"workers"`
	Renews     int    `json:"renews"`
	Release    bool   `json:"release"`
	Fault      bool   `json:"fault"`
	Seed       uint64 `json:"seed,omitempty"`
	Reserves   int64  `json:"reserves"` // successful reserve calls (incl. renews)
	Releases   int64  `json:"releases"` // successful release calls
	// Failures are calls that failed after all retries for transport or
	// remote reasons; Shed counts responses the server's admission gate
	// rejected unexecuted (each retried with backoff); ShedFailures are
	// calls ultimately rejected as overloaded — unexecuted by contract, so
	// they are never lost executions.
	Failures     int64   `json:"failures"`
	Shed         int64   `json:"shed"`
	ShedFailures int64   `json:"shed_failures,omitempty"`
	Retries      int64   `json:"retries"`     // client-level retry attempts
	Redials      int64   `json:"redials"`     // client reconnects
	Seconds      float64 `json:"seconds"`     // wall-clock run time
	ReservesPS   float64 `json:"reserves_ps"` // successful reserves per second
	P50Millis    float64 `json:"p50_ms"`      // reserve-call latency
	P99Millis    float64 `json:"p99_ms"`
	Executions   int64   `json:"executions,omitempty"` // from -metrics: Δdispatched − Δreplayed
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7001", "registry address")
	secret := flag.String("secret", "", "federation secret (required)")
	lifecycles := flag.Int("lifecycles", 1000, "slice lifecycles to run")
	workers := flag.Int("workers", 32, "concurrent workers")
	renews := flag.Int("renews", 1, "idempotent renewals (re-reserves) per lifecycle")
	sites := flag.Int("sites", 1, "sites per reservation")
	perSite := flag.Int("per-site", 1, "slivers per site")
	ttl := flag.Float64("ttl", 60, "reservation TTL seconds (0 = held until release)")
	release := flag.Bool("release", true, "explicitly release each lifecycle's slivers")
	prefix := flag.String("prefix", "load", "slice-name prefix (reuse to replay a previous run's keys)")
	callTimeout := flag.Duration("call-timeout", 5*time.Second, "per-call timeout")
	maxAttempts := flag.Int("max-attempts", 30, "retry budget per call (generous, to ride through a daemon restart)")
	fault := flag.Bool("fault", false, "dial through a fault-injecting network")
	seed := flag.Uint64("seed", 1, "fault-injection seed")
	metricsAddr := flag.String("metrics", "", "daemon metrics address for the exactly-once counter check")
	expectExec := flag.Int64("expect-executions", -1, "with -metrics: assert Δdispatched−Δreplayed reserves equals this (-1 = report only)")
	verify := flag.Bool("verify", false, "after the run, wait for the substrate to return to full capacity")
	verifyWait := flag.Duration("verify-wait", 2*time.Minute, "how long -verify polls before failing")
	label := flag.String("label", "", "label recorded in the JSON result")
	out := flag.String("out", "", "append the JSON result to this file (default stdout)")
	flag.Parse()

	if *secret == "" {
		fmt.Fprintln(os.Stderr, "fedload: -secret is required")
		os.Exit(2)
	}
	if *lifecycles <= 0 || *workers <= 0 || *renews < 0 {
		fmt.Fprintln(os.Stderr, "fedload: need positive lifecycles/workers and non-negative renews")
		os.Exit(2)
	}

	before, err := reserveCounters(*metricsAddr)
	if err != nil {
		fail(err)
	}

	res := run(runConfig{
		addr: *addr, secret: *secret,
		lifecycles: *lifecycles, workers: *workers, renews: *renews,
		sites: *sites, perSite: *perSite, ttl: *ttl, release: *release,
		prefix: *prefix, callTimeout: *callTimeout, maxAttempts: *maxAttempts,
		fault: *fault, seed: *seed,
	})
	res.Label = *label

	if *metricsAddr != "" {
		after, err := reserveCounters(*metricsAddr)
		if err != nil {
			fail(err)
		}
		res.Executions = (after.dispatched - before.dispatched) - (after.replayed - before.replayed)
		if *expectExec >= 0 && res.Executions != *expectExec {
			fail(fmt.Errorf("exactly-once violated: %d reserve executions (Δdispatched %d − Δreplayed %d), want %d",
				res.Executions, after.dispatched-before.dispatched, after.replayed-before.replayed, *expectExec))
		}
	}

	if err := emit(res, *out); err != nil {
		fail(err)
	}
	if res.Failures > 0 {
		fail(fmt.Errorf("%d calls failed after exhausting retries", res.Failures))
	}
	if res.ShedFailures > 0 {
		// Shed calls never executed (the admission gate rejects before any
		// work), so these are refusals, not lost executions — but a run that
		// could not push its load through still fails.
		fail(fmt.Errorf("%d calls still shed after exhausting retries", res.ShedFailures))
	}
	if *verify {
		if err := verifyIdle(*addr, *verifyWait); err != nil {
			fail(err)
		}
	}
}

type runConfig struct {
	addr, secret, prefix        string
	lifecycles, workers, renews int
	sites, perSite              int
	ttl                         float64
	release, fault              bool
	seed                        uint64
	callTimeout                 time.Duration
	maxAttempts                 int
}

func run(cfg runConfig) result {
	var (
		reserves, releases, failures atomic.Int64
		shed, shedFailures           atomic.Int64
		retries, redials             atomic.Int64
		latMu                        sync.Mutex
		latencies                    []float64 // reserve-call millis
	)
	next := atomic.Int64{}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < cfg.workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			ccfg := sfa.ClientConfig{
				Addr: cfg.addr, CallTimeout: cfg.callTimeout,
				MaxAttempts: cfg.maxAttempts,
				RetryBase:   5 * time.Millisecond, RetryMax: 250 * time.Millisecond,
				BreakerThreshold: -1, // a restarting daemon is the scenario, not a reason to fail fast
				Seed:             cfg.seed + uint64(w),
			}
			if cfg.fault {
				d := faultnet.NewDialer(faultnet.Config{
					Seed:  cfg.seed*1_000_003 + uint64(w)*7919,
					PDrop: 0.03, PPartial: 0.03, PCorrupt: 0.02, PDropResponse: 0.05,
					PLatency: 0.05, MaxLatency: 2 * time.Millisecond,
				})
				ccfg.DialFunc = d.Dial
			}
			c := sfa.NewClient(ccfg)
			defer func() {
				st := c.Stats()
				retries.Add(st.Retries)
				redials.Add(st.Redials)
				shed.Add(st.Shed)
				c.Close()
			}()
			cred := sfa.IssueCredential([]byte(cfg.secret), "fedload", "fedload", time.Hour)
			var local []float64
			for {
				i := next.Add(1) - 1
				if i >= int64(cfg.lifecycles) {
					break
				}
				slice := fmt.Sprintf("%s-%d", cfg.prefix, i)
				var rr sfa.ReserveResponse
				ok := true
				// Reserve, then renew by re-issuing the same key: the
				// server must replay, not double-book.
				for attempt := 0; attempt <= cfg.renews; attempt++ {
					t0 := time.Now()
					err := c.Call(sfa.MethodReserve, sfa.ReserveRequest{
						Credential: cred, SliceName: slice,
						Sites: cfg.sites, PerSite: cfg.perSite,
						IdempotencyKey: slice + "/r", TTLSeconds: cfg.ttl,
					}, &rr)
					if err != nil {
						if sfa.IsOverloaded(err) {
							shedFailures.Add(1)
						} else {
							failures.Add(1)
						}
						ok = false
						break
					}
					local = append(local, float64(time.Since(t0).Microseconds())/1000)
					reserves.Add(1)
				}
				if !ok || !cfg.release {
					continue
				}
				if err := c.Call(sfa.MethodRelease, sfa.ReleaseRequest{
					Credential: cred, SliceName: slice, Slivers: rr.Slivers,
					IdempotencyKey: slice + "/rel",
				}, nil); err != nil {
					if sfa.IsOverloaded(err) {
						shedFailures.Add(1)
					} else {
						failures.Add(1)
					}
					continue
				}
				releases.Add(1)
			}
			latMu.Lock()
			latencies = append(latencies, local...)
			latMu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := result{
		Addr: cfg.addr, Lifecycles: cfg.lifecycles, Workers: cfg.workers,
		Renews: cfg.renews, Release: cfg.release, Fault: cfg.fault,
		Reserves: reserves.Load(), Releases: releases.Load(),
		Failures: failures.Load(), Shed: shed.Load(), ShedFailures: shedFailures.Load(),
		Retries: retries.Load(), Redials: redials.Load(),
		Seconds: elapsed.Seconds(),
	}
	if cfg.fault {
		res.Seed = cfg.seed
	}
	if res.Seconds > 0 {
		res.ReservesPS = float64(res.Reserves) / res.Seconds
	}
	res.P50Millis = percentile(latencies, 50)
	res.P99Millis = percentile(latencies, 99)
	return res
}

// percentile returns the p-th percentile of values in place (nearest-rank).
func percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sort.Float64s(values)
	rank := int(math.Ceil(p / 100 * float64(len(values))))
	if rank < 1 {
		rank = 1
	}
	return values[rank-1]
}

// counters holds the two sides of the exactly-once identity.
type counters struct {
	dispatched, replayed int64
}

// reserveCounters reads the daemon's reserve dispatch and replay counters
// from its metrics endpoint. A zero value is returned when addr is empty.
func reserveCounters(addr string) (counters, error) {
	var c counters
	if addr == "" {
		return c, nil
	}
	httpc := &http.Client{Timeout: 10 * time.Second}
	var resp *http.Response
	var err error
	delay := 100 * time.Millisecond
	for attempt := 0; attempt < 5; attempt++ {
		if attempt > 0 {
			time.Sleep(delay)
			delay *= 2
		}
		resp, err = httpc.Get("http://" + addr + "/metrics.json")
		if err == nil {
			break
		}
	}
	if err != nil {
		return c, fmt.Errorf("metrics fetch: %w", err)
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return c, fmt.Errorf("metrics decode: %w", err)
	}
	for _, f := range snap.Families {
		for _, m := range f.Metrics {
			if m.Labels["method"] != sfa.MethodReserve {
				continue
			}
			switch f.Name {
			case "fedshare_sfa_requests_total":
				c.dispatched = int64(m.Value)
			case "fedshare_sfa_dedup_replays_total":
				c.replayed = int64(m.Value)
			}
		}
	}
	return c, nil
}

// verifyIdle polls the registry until every site reports free == capacity —
// all load released (explicitly or via lease expiry) — or the wait elapses.
func verifyIdle(addr string, wait time.Duration) error {
	c, err := sfa.Dial(addr, 10*time.Second)
	if err != nil {
		return err
	}
	defer c.Close()
	deadline := time.Now().Add(wait)
	for {
		var rl sfa.ResourceList
		if err := c.Call(sfa.MethodListResources, sfa.Empty{}, &rl); err != nil {
			return err
		}
		held := 0
		for _, s := range rl.Sites {
			held += s.Capacity - s.Free
		}
		if held == 0 {
			fmt.Fprintf(os.Stderr, "fedload: verify ok — substrate back to full capacity\n")
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("verify: %d slivers still held after %s", held, wait)
		}
		time.Sleep(250 * time.Millisecond)
	}
}

// emit appends the result as one JSON line to path (stdout when empty).
func emit(res result, path string) error {
	b, err := json.Marshal(res)
	if err != nil {
		return err
	}
	if path == "" {
		fmt.Println(string(b))
		return nil
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(append(b, '\n'))
	fmt.Println(string(b))
	return err
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fedload:", err)
	os.Exit(1)
}
