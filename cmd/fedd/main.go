// Command fedd runs one federation authority's SFA registry daemon.
//
// Usage:
//
//	fedd -name PLE -listen 127.0.0.1:7002 -sites 40 -nodes 2 -capacity 10 \
//	     -secret fed-secret -peer 127.0.0.1:7001 \
//	     -metrics-addr 127.0.0.1:9090 -log-level info
//
// The daemon serves the SFA wire protocol: resource advertisement, peering,
// federated slice embedding, and value-share computation. With
// -metrics-addr it also serves the observability endpoint: Prometheus text
// format at /metrics, a JSON snapshot at /metrics.json (what `fedctl
// metrics` renders), a per-peer health snapshot at /peersz (what `fedctl
// status` renders as the peer table), a liveness probe at /healthz, and a
// readiness probe at /readyz that flips to 503 while the daemon drains.
// -max-inflight bounds concurrently executing requests; excess load is
// shed with a retriable overload code instead of queueing without bound. On SIGTERM/SIGINT the
// daemon shuts down gracefully: readiness flips, the optional -drain-grace
// lame-duck period elapses, in-flight requests finish, and only then does
// the process exit. At -log-level debug every dispatched request and span
// is logged as a structured key=value line.
//
// With -data-dir the registry's durable state (slices, slivers, leases,
// idempotency outcomes) survives restarts: mutations go through a
// write-ahead log with periodic snapshots, and on startup the daemon
// recovers to its last durable state before accepting traffic. -fsync
// selects the durability discipline ("interval", the default, bounds
// power-loss exposure to -fsync-interval; "always" fsyncs before every
// acknowledgment); process crashes lose nothing under either policy.
//
// With -api (requires -metrics-addr) the daemon also serves experiments:
// the scenario engine runs declarative specs asynchronously behind an
// HTTP/JSON API (POST /api/v1/runs, GET /api/v1/runs[/{id}[/result]],
// DELETE to cancel, GET /api/v1/scenarios for the registered figure set)
// with an embedded zero-dependency dashboard at /. -api-concurrency bounds
// how many experiments execute at once; submissions beyond it queue.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	// Registers the paper-figure scenarios, so the served API and dashboard
	// expose the same registry fedsim runs.
	_ "fedshare/internal/figures"

	"fedshare/internal/obs"
	"fedshare/internal/planetlab"
	"fedshare/internal/scenario/api"
	"fedshare/internal/scenario/engine"
	"fedshare/internal/sfa"
	"fedshare/internal/wal"
)

func main() {
	name := flag.String("name", "PLC", "authority name")
	listen := flag.String("listen", "127.0.0.1:7001", "listen address")
	sites := flag.Int("sites", 10, "number of sites this authority contributes")
	nodes := flag.Int("nodes", 2, "nodes per site")
	capacity := flag.Int("capacity", 10, "sliver capacity per node")
	secret := flag.String("secret", "", "shared federation secret (required)")
	peer := flag.String("peer", "", "optional peer registry address to federate with at startup")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /metrics.json, /healthz, /readyz and /version on this address (empty = disabled)")
	apiEnabled := flag.Bool("api", false, "serve the scenario API and dashboard on the metrics address (requires -metrics-addr)")
	apiConcurrency := flag.Int("api-concurrency", 2, "how many submitted experiments execute simultaneously (further submissions queue)")
	drainGrace := flag.Duration("drain-grace", 0, "lame-duck period between flipping /readyz to 503 and draining connections")
	logLevel := flag.String("log-level", "info", "minimum log level: debug, info, or error")
	maxInFlight := flag.Int("max-inflight", 1024, "admission bound on concurrently executing requests; excess requests are shed with a retriable overload code (0 = unlimited)")
	dataDir := flag.String("data-dir", "", "persist durable state (WAL + snapshots) in this directory; empty = memory-only")
	fsync := flag.String("fsync", "interval", "WAL fsync policy: interval (background, bounded power-loss window) or always (fsync before every acknowledgment)")
	fsyncInterval := flag.Duration("fsync-interval", 100*time.Millisecond, "background fsync pacing for -fsync interval")
	snapshotEvery := flag.Int("snapshot-every", 4096, "cut a snapshot and rotate the WAL after this many appends (negative disables)")
	flag.Parse()

	if *secret == "" {
		fmt.Fprintln(os.Stderr, "fedd: -secret is required")
		os.Exit(2)
	}
	level, err := obs.ParseLogLevel(*logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fedd:", err)
		os.Exit(2)
	}
	if *sites < 0 || *nodes <= 0 || *capacity <= 0 {
		fmt.Fprintln(os.Stderr, "fedd: sites must be >= 0, nodes and capacity positive")
		os.Exit(2)
	}
	if *apiEnabled && *metricsAddr == "" {
		fmt.Fprintln(os.Stderr, "fedd: -api requires -metrics-addr (the API shares its listener)")
		os.Exit(2)
	}
	if *apiConcurrency <= 0 {
		fmt.Fprintln(os.Stderr, "fedd: -api-concurrency must be positive")
		os.Exit(2)
	}
	if *maxInFlight < 0 {
		fmt.Fprintln(os.Stderr, "fedd: -max-inflight must be >= 0")
		os.Exit(2)
	}

	auth := planetlab.NewAuthority(*name)
	for s := 0; s < *sites; s++ {
		site := &planetlab.Site{
			ID:   fmt.Sprintf("%s-site%03d", *name, s),
			Name: fmt.Sprintf("%s site %d", *name, s),
		}
		for n := 0; n < *nodes; n++ {
			site.Nodes = append(site.Nodes, planetlab.Node{
				ID:       fmt.Sprintf("node%d", n),
				HostName: fmt.Sprintf("node%d.site%03d.%s.example.net", n, s, *name),
				Capacity: *capacity,
			})
		}
		if err := auth.AddSite(site); err != nil {
			log.Fatalf("fedd: %v", err)
		}
	}

	var shuttingDown atomic.Bool
	srvOpts := []sfa.Option{
		sfa.WithLogLevel(level),
		sfa.WithConfig(sfa.ServerConfig{MaxInFlight: *maxInFlight}),
	}
	var store *sfa.DurableStore
	var recovered *sfa.State
	if *dataDir != "" {
		policy, err := wal.ParseFsyncPolicy(*fsync)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fedd:", err)
			os.Exit(2)
		}
		store, recovered, err = sfa.OpenDurableStore(sfa.DurableOptions{
			Dir:           *dataDir,
			Fsync:         policy,
			FsyncInterval: *fsyncInterval,
			SnapshotEvery: *snapshotEvery,
			Logf:          log.Printf,
		})
		if err != nil {
			log.Fatalf("fedd: open data dir %s: %v", *dataDir, err)
		}
		srvOpts = append(srvOpts, sfa.WithStore(store))
		log.Printf("fedd: durable state in %s (fsync=%s)", *dataDir, *fsync)
	}
	srv := sfa.NewServer(auth, []byte(*secret), srvOpts...)
	if recovered != nil {
		if err := srv.Restore(recovered); err != nil {
			log.Fatalf("fedd: restore durable state: %v", err)
		}
	}
	if level <= obs.LogDebug {
		// Route span trace lines through the same log stream as server
		// diagnostics.
		obs.SetTraceSink(obs.NewLogger(log.Printf, obs.LogDebug).TraceSink())
	}
	if err := srv.Start(*listen); err != nil {
		log.Fatalf("fedd: %v", err)
	}
	log.Printf("fedd: %s serving %d sites on %s", *name, *sites, srv.Addr())

	var eng *engine.Engine
	if *metricsAddr != "" {
		obs.RegisterRuntimeMetrics(obs.Default)
		mln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatalf("fedd: metrics listen %s: %v", *metricsAddr, err)
		}
		log.Printf("fedd: metrics on http://%s/metrics", mln.Addr())
		// /readyz flips to 503 the moment shutdown begins, so an
		// orchestrator stops routing before the listener goes away.
		mux := obs.HandlerWithHealth(func() bool {
			return !shuttingDown.Load() && !srv.Draining()
		})
		// Per-peer health, breaker, and reconcile-backlog snapshot; fedctl
		// status renders this as the peer table.
		mux.HandleFunc("/peersz", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			peers := srv.PeerHealth()
			if peers == nil {
				peers = []sfa.PeerHealthInfo{}
			}
			if err := json.NewEncoder(w).Encode(peers); err != nil {
				log.Printf("fedd: /peersz encode: %v", err)
			}
		})
		if *apiEnabled {
			eng = engine.New(engine.Options{MaxConcurrent: *apiConcurrency})
			api.NewServer(eng).Register(mux)
			log.Printf("fedd: scenario API and dashboard on http://%s/", mln.Addr())
		}
		go func() {
			if err := http.Serve(mln, mux); err != nil {
				log.Printf("fedd: metrics server: %v", err)
			}
		}()
	}

	if *peer != "" {
		if err := srv.PeerWith(*peer); err != nil {
			log.Fatalf("fedd: peering with %s: %v", *peer, err)
		}
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	<-sigc
	// Graceful shutdown: flip readiness, wait out the lame-duck grace so
	// load balancers observe the 503 and stop routing, then stop accepting
	// and let in-flight requests finish. Leased resources are left to their
	// holders. A second signal during the drain exits immediately.
	log.Printf("fedd: %s draining", *name)
	shuttingDown.Store(true)
	if *drainGrace > 0 {
		select {
		case <-time.After(*drainGrace):
		case <-sigc:
			log.Printf("fedd: %s forced shutdown", *name)
			return
		}
	}
	drained := make(chan struct{})
	go func() {
		srv.Drain()
		close(drained)
	}()
	select {
	case <-drained:
	case <-sigc:
		log.Printf("fedd: %s forced shutdown", *name)
	}
	log.Printf("fedd: %s shutting down", *name)
	if eng != nil {
		// Cancel in-flight experiments and wait for their goroutines; their
		// runs end in the cancelled state rather than being torn mid-sweep.
		eng.Close()
	}
	if err := srv.Close(); err != nil {
		log.Printf("fedd: close: %v", err)
	}
	if store != nil {
		// Cut a final snapshot so the next start recovers without replay.
		if err := store.Close(); err != nil {
			log.Printf("fedd: close data dir: %v", err)
		}
	}
}
