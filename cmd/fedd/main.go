// Command fedd runs one federation authority's SFA registry daemon.
//
// Usage:
//
//	fedd -name PLE -listen 127.0.0.1:7002 -sites 40 -nodes 2 -capacity 10 \
//	     -secret fed-secret -peer 127.0.0.1:7001
//
// The daemon serves the SFA wire protocol: resource advertisement, peering,
// federated slice embedding, and value-share computation.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"fedshare/internal/planetlab"
	"fedshare/internal/sfa"
)

func main() {
	name := flag.String("name", "PLC", "authority name")
	listen := flag.String("listen", "127.0.0.1:7001", "listen address")
	sites := flag.Int("sites", 10, "number of sites this authority contributes")
	nodes := flag.Int("nodes", 2, "nodes per site")
	capacity := flag.Int("capacity", 10, "sliver capacity per node")
	secret := flag.String("secret", "", "shared federation secret (required)")
	peer := flag.String("peer", "", "optional peer registry address to federate with at startup")
	flag.Parse()

	if *secret == "" {
		fmt.Fprintln(os.Stderr, "fedd: -secret is required")
		os.Exit(2)
	}
	if *sites < 0 || *nodes <= 0 || *capacity <= 0 {
		fmt.Fprintln(os.Stderr, "fedd: sites must be >= 0, nodes and capacity positive")
		os.Exit(2)
	}

	auth := planetlab.NewAuthority(*name)
	for s := 0; s < *sites; s++ {
		site := &planetlab.Site{
			ID:   fmt.Sprintf("%s-site%03d", *name, s),
			Name: fmt.Sprintf("%s site %d", *name, s),
		}
		for n := 0; n < *nodes; n++ {
			site.Nodes = append(site.Nodes, planetlab.Node{
				ID:       fmt.Sprintf("node%d", n),
				HostName: fmt.Sprintf("node%d.site%03d.%s.example.net", n, s, *name),
				Capacity: *capacity,
			})
		}
		if err := auth.AddSite(site); err != nil {
			log.Fatalf("fedd: %v", err)
		}
	}

	srv := sfa.NewServer(auth, []byte(*secret))
	if err := srv.Start(*listen); err != nil {
		log.Fatalf("fedd: %v", err)
	}
	log.Printf("fedd: %s serving %d sites on %s", *name, *sites, srv.Addr())

	if *peer != "" {
		if err := srv.PeerWith(*peer); err != nil {
			log.Fatalf("fedd: peering with %s: %v", *peer, err)
		}
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	<-sigc
	log.Printf("fedd: %s shutting down", *name)
	if err := srv.Close(); err != nil {
		log.Printf("fedd: close: %v", err)
	}
}
