// Command fedsim regenerates the paper's figures as data tables and ASCII
// charts, and renders the schematic diagrams (Figs 1 and 3).
//
// Usage:
//
//	fedsim -fig fig4          # one figure
//	fedsim -all               # every figure
//	fedsim -fig fig4 -chart   # with an ASCII chart
//	fedsim -all -v            # per-figure wall-clock + allocation-memo stats
//	fedsim -all -json         # machine-readable run summary (timings + metrics)
//	fedsim -diagram           # the federation-model and game diagrams
//	fedsim -weights           # offline Shapley weight table (Sec. 3.2.3)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"fedshare/internal/allocation"
	"fedshare/internal/asciichart"
	"fedshare/internal/core"
	"fedshare/internal/figures"
	"fedshare/internal/obs"
	"fedshare/internal/policy"
	"fedshare/internal/sweep"
)

// allFigureIDs lists every figure in paper order plus the extensions,
// regenerated one at a time so -v can attribute wall-clock per figure.
var allFigureIDs = []string{
	"fig2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig-market",
}

func main() {
	figID := flag.String("fig", "", "figure to regenerate (fig2, fig4, fig4-strict, fig5, fig6, fig7, fig8, fig9, fig-market)")
	all := flag.Bool("all", false, "regenerate every figure (paper + extensions)")
	chart := flag.Bool("chart", false, "also render an ASCII chart")
	diagram := flag.Bool("diagram", false, "print the schematic diagrams (paper Figs 1 and 3)")
	weights := flag.Bool("weights", false, "print the offline Shapley weight table (Sec. 3.2.3 workflow)")
	width := flag.Int("width", 72, "chart width")
	height := flag.Int("height", 20, "chart height")
	workers := flag.Int("workers", 0, "parallel workers for the coalition kernel (0 = all cores)")
	sweepWorkers := flag.Int("sweep-workers", 0, "parallel workers for figure/parameter sweeps (0 = all cores, 1 = sequential)")
	verbose := flag.Bool("v", false, "print per-figure wall-clock and allocation-memo hit-rate summaries")
	jsonOut := flag.Bool("json", false, "suppress tables and emit a JSON run summary (per-figure timings + obs metrics snapshot)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	// The coalition engine (SnapshotParallel / BatchedValuesParallel) sizes
	// its worker pools from GOMAXPROCS; -workers bounds both.
	if *workers > 0 {
		runtime.GOMAXPROCS(*workers)
	}
	// Sweep-level parallelism (figures.shareSweep, core.IncentiveCurve,
	// policy.BuildWeightTable) is bounded independently.
	if *sweepWorkers > 0 {
		sweep.SetDefaultWorkers(*sweepWorkers)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	defer func() {
		if *memProfile == "" {
			return
		}
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	run := runConfig{
		chart: *chart, width: *width, height: *height,
		verbose: *verbose, jsonOut: *jsonOut,
	}
	switch {
	case *diagram:
		printDiagrams()
	case *weights:
		printWeightTable()
	case *all:
		for _, id := range allFigureIDs {
			if err := run.figure(id); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
		}
		run.finish()
	case *figID != "":
		if err := run.figure(*figID); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		run.finish()
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// runConfig carries output options and accumulates the -json summary.
type runConfig struct {
	chart         bool
	width, height int
	verbose       bool
	jsonOut       bool
	figureSummary []figureSummary
}

// figureSummary is one figure's entry in the -json run summary.
type figureSummary struct {
	ID          string `json:"id"`
	Title       string `json:"title"`
	WallClockNS int64  `json:"wall_clock_ns"`
	MemoHits    int64  `json:"memo_hits"`
	MemoMisses  int64  `json:"memo_misses"`
	SeriesCount int    `json:"series"`
}

// runSummary is the fedsim -json document: per-figure timings plus the
// end-of-run state of the process metrics registry — the same registry
// fedd serves over HTTP.
type runSummary struct {
	Figures []figureSummary `json:"figures"`
	Metrics obs.Snapshot    `json:"metrics"`
}

// figure regenerates one figure, timing the generation (not the
// rendering) and attributing allocation-memo traffic to it.
func (rc *runConfig) figure(id string) error {
	before := allocation.DefaultMemo.Stats()
	sp := obs.StartSpan("fedsim.figure").Attr("fig", id)
	start := time.Now()
	f, err := figures.ByID(id)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	sp.End()
	after := allocation.DefaultMemo.Stats()
	if rc.jsonOut {
		rc.figureSummary = append(rc.figureSummary, figureSummary{
			ID: f.ID, Title: f.Title, WallClockNS: elapsed.Nanoseconds(),
			MemoHits:    after.Hits - before.Hits,
			MemoMisses:  after.Misses - before.Misses,
			SeriesCount: len(f.Series),
		})
		return nil
	}
	printFigure(f, rc.chart, rc.width, rc.height)
	if rc.verbose {
		hits := after.Hits - before.Hits
		misses := after.Misses - before.Misses
		rate := 0.0
		if hits+misses > 0 {
			rate = float64(hits) / float64(hits+misses)
		}
		fmt.Printf("-- %s: %v wall-clock, allocation memo %d hits / %d misses (%.1f%% hit rate)\n\n",
			f.ID, elapsed.Round(time.Microsecond), hits, misses, 100*rate)
	}
	return nil
}

// finish emits the JSON run summary when -json is set.
func (rc *runConfig) finish() {
	if !rc.jsonOut {
		return
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(runSummary{Figures: rc.figureSummary, Metrics: obs.Default.Snapshot()}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func printFigure(f *figures.Figure, chart bool, w, h int) {
	fmt.Printf("== %s: %s ==\n", f.ID, f.Title)
	if f.Notes != "" {
		fmt.Printf("   %s\n", f.Notes)
	}
	fmt.Println(f.Table())
	if chart {
		fmt.Println(asciichart.Render(f.Series, asciichart.Options{Width: w, Height: h}))
	}
}

// printWeightTable demonstrates the paper's Sec. 3.2.3 practical workflow:
// φ̂ computed off-line over a scenario grid, ready to be used as generic
// policy weights.
func printWeightTable() {
	facilities := []core.Facility{
		{Name: "PLC", Locations: 100, Resources: 80},
		{Name: "PLE", Locations: 400, Resources: 60},
		{Name: "PLJ", Locations: 800, Resources: 20},
	}
	thresholds := []float64{0, 250, 500, 750, 1000, 1250}
	volumes := []int{1, 20, 100}
	tbl, err := policy.BuildWeightTable(facilities, thresholds, volumes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("offline Shapley weight table (PLC/PLE/PLJ: L = 100/400/800, R = 80/60/20):")
	fmt.Printf("%10s %8s", "l", "K")
	for _, f := range tbl.Facilities {
		fmt.Printf(" %9s", f)
	}
	fmt.Println()
	for _, r := range tbl.Rows {
		fmt.Printf("%10.0f %8d", r.Threshold, r.Volume)
		for _, s := range r.Shares {
			fmt.Printf(" %8.2f%%", s*100)
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("Operators look up (or Blend) these rows by expected demand instead of")
	fmt.Println("running the coalition game online (Sec. 3.2.3).")
}

func printDiagrams() {
	fmt.Print(`== Figure 1: federation model ==

  facility 1 (L1 locations, R1 each)   facility 2 (L2, R2)   facility 3 (L3, R3)
        \                                  |                      /
         \                                 |                     /
          +----------------- federated location pool ---------------+
          | location l: capacity = sum of R_i over facilities at l  |
          | diversity  = number of distinct locations in the pool   |
          +----------------------------------------------------------+
                      |                             |
            external customers E            affiliated users U_i
            (commercial scenario)           (P2P scenario)

== Figure 3: the federation game ==

  individual contributions (L_i, R_i)        policy input
        |                                         |
        v                                         v
  [resource allocation / profit maximization]  --->  federation value V(N)
        |                                         |
        v                                         v
  [profit & value sharing: Shapley | nucleolus | proportional | priorities]
        |
        v
  individual shares s_i  --->  local provision decisions (value vs cost)
        |                                         |
        +------------------- feedback loop -------+
`)
}
