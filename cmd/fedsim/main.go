// Command fedsim regenerates the paper's figures as data tables and ASCII
// charts, runs user-supplied scenario specs, and renders the schematic
// diagrams (Figs 1 and 3). The paper figures themselves are declarative
// scenario specs registered by the figures package; -list shows the
// registry.
//
// Usage:
//
//	fedsim -fig fig4                     # one figure
//	fedsim -all                          # every figure
//	fedsim -list                         # registered scenarios
//	fedsim -scenario examples/foo.json   # arbitrary scenario from a spec file
//	fedsim -fig fig4 -chart              # with an ASCII chart
//	fedsim -all -v                       # per-figure wall-clock + memo stats
//	fedsim -all -json                    # machine-readable run summary
//	fedsim -diagram                      # the federation-model and game diagrams
//	fedsim -weights                      # offline Shapley weight table (Sec. 3.2.3)
//	fedsim -scenario spec.json -approx -ci-target 0.01 -seed 7
//	                                     # force the sampling Shapley engine
//	fedsim -scenario spec.json -result-json
//	                                     # emit the result document (the
//	                                     # same bytes the served API returns)
//
// Execution goes through the scenario engine (internal/scenario/engine) —
// the same run table and executor a fedd -api daemon serves over HTTP —
// with fedsim as a one-shot synchronous client of it.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"fedshare/internal/allocation"
	"fedshare/internal/asciichart"
	"fedshare/internal/coalition"
	"fedshare/internal/core"
	"fedshare/internal/figures"
	"fedshare/internal/obs"
	"fedshare/internal/policy"
	"fedshare/internal/scenario"
	"fedshare/internal/scenario/engine"
	"fedshare/internal/sweep"
)

// runAllIDs lists the registry in registration (paper) order for -all,
// skipping variant entries — alternate conventions of another figure that
// remain runnable by explicit -fig.
func runAllIDs() []string {
	var ids []string
	for _, e := range scenario.Entries() {
		if e.Variant {
			continue
		}
		ids = append(ids, e.ID)
	}
	return ids
}

func main() {
	figID := flag.String("fig", "", "scenario to regenerate ("+strings.Join(scenario.IDs(), ", ")+")")
	scenarioPath := flag.String("scenario", "", "run a declarative scenario spec from a JSON file")
	list := flag.Bool("list", false, "list the registered scenarios and exit")
	all := flag.Bool("all", false, "regenerate every figure (paper + extensions)")
	chart := flag.Bool("chart", false, "also render an ASCII chart")
	diagram := flag.Bool("diagram", false, "print the schematic diagrams (paper Figs 1 and 3)")
	weights := flag.Bool("weights", false, "print the offline Shapley weight table (Sec. 3.2.3 workflow)")
	width := flag.Int("width", 72, "chart width")
	height := flag.Int("height", 20, "chart height")
	workers := flag.Int("workers", 0, "parallel workers for the coalition kernel (0 = all cores)")
	sweepWorkers := flag.Int("sweep-workers", 0, "parallel workers for figure/parameter sweeps (0 = all cores, 1 = sequential)")
	verbose := flag.Bool("v", false, "print per-figure wall-clock and allocation-memo hit-rate summaries")
	jsonOut := flag.Bool("json", false, "suppress tables and emit a JSON run summary (per-figure timings + obs metrics snapshot)")
	resultJSON := flag.Bool("result-json", false, "suppress tables and emit each result document as JSON (byte-identical to the served API's /result endpoint)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	approx := flag.Bool("approx", false, "force the sampling Shapley engine (spec method \"approx\") for spec-backed scenarios")
	samples := flag.Int("samples", 0, "permutation-sample budget for the approximate Shapley engine (0 = spec/default)")
	ciTarget := flag.Float64("ci-target", 0, "adaptive sampling target: 95% CI half-width as a fraction of V(N), e.g. 0.01 (0 = spec/default)")
	seed := flag.Uint64("seed", 0, "seed for the approximate Shapley engine's deterministic sample stream (0 = spec/default)")
	noIncremental := flag.Bool("no-incremental", false, "disable the incremental prefix-allocation path in the sampling Shapley engines (results are bit-identical; for verification and measurement)")
	flag.Usage = func() {
		out := flag.CommandLine.Output()
		fmt.Fprintln(out, "usage: fedsim [flags]")
		fmt.Fprintln(out)
		fmt.Fprintln(out, "registered scenarios (-fig <id>):")
		writeScenarioList(out)
		fmt.Fprintln(out)
		fmt.Fprintln(out, "flags:")
		flag.PrintDefaults()
	}
	flag.Parse()

	// The coalition engine (SnapshotParallel / BatchedValuesParallel) sizes
	// its worker pools from GOMAXPROCS; -workers bounds both.
	if *workers > 0 {
		runtime.GOMAXPROCS(*workers)
	}
	// Sweep-level parallelism (figures.shareSweep, core.IncentiveCurve,
	// policy.BuildWeightTable) is bounded independently.
	if *sweepWorkers > 0 {
		sweep.SetDefaultWorkers(*sweepWorkers)
	}
	if *noIncremental {
		coalition.SetIncrementalEnabled(false)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	defer func() {
		if *memProfile == "" {
			return
		}
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
		}
	}()

	if *jsonOut && *resultJSON {
		fmt.Fprintln(os.Stderr, "fedsim: -json and -result-json are mutually exclusive")
		os.Exit(2)
	}
	// One experiment at a time, like the old in-process path; each run's
	// sweep still fans out on the worker pool.
	eng := engine.New(engine.Options{MaxConcurrent: 1})
	defer eng.Close()
	run := runConfig{
		eng:   eng,
		chart: *chart, width: *width, height: *height,
		verbose: *verbose, jsonOut: *jsonOut, resultJSON: *resultJSON,
		approx: approxOverrides{
			force: *approx, samples: *samples, ciTarget: *ciTarget, seed: *seed,
		},
	}
	switch {
	case *list:
		fmt.Println("registered scenarios (fedsim -fig <id>):")
		writeScenarioList(os.Stdout)
	case *diagram:
		printDiagrams()
	case *weights:
		printWeightTable()
	case *scenarioPath != "":
		if err := run.scenarioFile(*scenarioPath); err != nil {
			fmt.Fprintln(os.Stderr, "fedsim:", err)
			os.Exit(1)
		}
		run.finish()
	case *all:
		for _, id := range runAllIDs() {
			if err := run.figure(id); err != nil {
				fmt.Fprintln(os.Stderr, "fedsim:", err)
				os.Exit(2)
			}
		}
		run.finish()
	case *figID != "":
		if err := run.figure(*figID); err != nil {
			fmt.Fprintln(os.Stderr, "fedsim:", err)
			os.Exit(2)
		}
		run.finish()
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// writeScenarioList renders the registry — one line per entry: id, whether
// it is spec- or code-backed, variant/extension marks, and title.
func writeScenarioList(w io.Writer) {
	for _, e := range scenario.Entries() {
		kind := e.Source()
		switch {
		case e.Variant:
			kind += ",variant"
		case e.Extension:
			kind += ",extension"
		}
		fmt.Fprintf(w, "  %-12s %-14s %s\n", e.ID, kind, e.Title)
	}
}

// runConfig carries output options and accumulates the -json summary. All
// execution goes through the engine, so fedsim exercises exactly the run
// path a serving daemon does.
type runConfig struct {
	eng           *engine.Engine
	chart         bool
	width, height int
	verbose       bool
	jsonOut       bool
	resultJSON    bool
	approx        approxOverrides
	figureSummary []figureSummary
}

// approxOverrides carries the CLI-level approximation-tier controls
// (-approx, -samples, -ci-target, -seed). They override the matching
// fields of whichever spec-backed scenario runs; code-backed entries
// (which have no spec to parameterize) are run unchanged.
type approxOverrides struct {
	force    bool
	samples  int
	ciTarget float64
	seed     uint64
}

// active reports whether any override was requested.
func (o approxOverrides) active() bool {
	return o.force || o.samples > 0 || o.ciTarget > 0 || o.seed != 0
}

// apply folds the overrides into a copy of the spec and re-validates, so
// flag errors surface with the same diagnostics as spec-file errors.
func (o approxOverrides) apply(s *scenario.Spec) (*scenario.Spec, error) {
	if !o.active() {
		return s, nil
	}
	c := *s
	if o.force {
		c.Method = scenario.MethodApprox
	}
	if o.samples > 0 {
		c.Samples = o.samples
	}
	if o.ciTarget > 0 {
		c.CITarget = o.ciTarget
	}
	if o.seed != 0 {
		c.Seed = o.seed
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// figureSummary is one figure's entry in the -json run summary.
type figureSummary struct {
	ID              string `json:"id"`
	Title           string `json:"title"`
	WallClockNS     int64  `json:"wall_clock_ns"`
	MemoHits        int64  `json:"memo_hits"`
	MemoMisses      int64  `json:"memo_misses"`
	PrefixSteps     int64  `json:"prefix_steps"`
	PrefixFallbacks int64  `json:"prefix_fallbacks"`
	SeriesCount     int    `json:"series"`
}

// runSummary is the fedsim -json document: per-figure timings plus the
// end-of-run state of the process metrics registry — the same registry
// fedd serves over HTTP.
type runSummary struct {
	Figures []figureSummary `json:"figures"`
	Metrics obs.Snapshot    `json:"metrics"`
}

// figure regenerates one registered figure, honoring approximation-tier
// overrides for spec-backed entries.
func (rc *runConfig) figure(id string) error {
	return rc.render("fedsim.figure", "fig", id, func() (*figures.Figure, error) {
		e, err := scenario.ByID(id)
		if err != nil {
			return nil, err
		}
		if e.Spec == nil || !rc.approx.active() {
			return rc.eng.RunEntry(context.Background(), e)
		}
		spec, err := rc.approx.apply(e.Spec)
		if err != nil {
			return nil, err
		}
		return rc.eng.Run(context.Background(), spec)
	})
}

// scenarioFile loads a declarative spec from a JSON file, validates it,
// and runs it through the same executor and output paths as the figures.
func (rc *runConfig) scenarioFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	spec, err := scenario.ParseSpec(data)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	spec, err = rc.approx.apply(spec)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return rc.render("fedsim.scenario", "scenario", spec.ID, func() (*figures.Figure, error) {
		return rc.eng.Run(context.Background(), spec)
	})
}

// render generates one result, timing the generation (not the rendering)
// and attributing allocation-memo traffic to it.
func (rc *runConfig) render(span, attr, id string, gen func() (*figures.Figure, error)) error {
	before := allocation.DefaultMemo.Stats()
	stepsBefore, fallbacksBefore := allocation.PrefixCounters()
	sp := obs.StartSpan(span).Attr(attr, id)
	start := time.Now()
	f, err := gen()
	if err != nil {
		sp.End()
		return err
	}
	elapsed := time.Since(start)
	sp.End()
	after := allocation.DefaultMemo.Stats()
	stepsAfter, fallbacksAfter := allocation.PrefixCounters()
	steps := stepsAfter - stepsBefore
	fallbacks := fallbacksAfter - fallbacksBefore
	if rc.resultJSON {
		out, err := f.JSON()
		if err != nil {
			return err
		}
		_, err = os.Stdout.Write(out)
		return err
	}
	if rc.jsonOut {
		rc.figureSummary = append(rc.figureSummary, figureSummary{
			ID: f.ID, Title: f.Title, WallClockNS: elapsed.Nanoseconds(),
			MemoHits:        after.Hits - before.Hits,
			MemoMisses:      after.Misses - before.Misses,
			PrefixSteps:     steps,
			PrefixFallbacks: fallbacks,
			SeriesCount:     len(f.Series),
		})
		return nil
	}
	printFigure(f, rc.chart, rc.width, rc.height)
	if rc.verbose {
		hits := after.Hits - before.Hits
		misses := after.Misses - before.Misses
		rate := 0.0
		if hits+misses > 0 {
			rate = float64(hits) / float64(hits+misses)
		}
		fmt.Printf("-- %s: %v wall-clock, allocation memo %d hits / %d misses (%.1f%% hit rate)",
			f.ID, elapsed.Round(time.Microsecond), hits, misses, 100*rate)
		if steps > 0 {
			fmt.Printf(", prefix solver %d steps / %d fallbacks (%.1f%% fallback rate)",
				steps, fallbacks, 100*float64(fallbacks)/float64(steps))
		}
		fmt.Printf("\n\n")
	}
	return nil
}

// finish emits the JSON run summary when -json is set.
func (rc *runConfig) finish() {
	if !rc.jsonOut {
		return
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(runSummary{Figures: rc.figureSummary, Metrics: obs.Default.Snapshot()}); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func printFigure(f *figures.Figure, chart bool, w, h int) {
	fmt.Printf("== %s: %s ==\n", f.ID, f.Title)
	if f.Notes != "" {
		fmt.Printf("   %s\n", f.Notes)
	}
	fmt.Println(f.Table())
	if chart {
		fmt.Println(asciichart.Render(f.Series, asciichart.Options{Width: w, Height: h}))
	}
}

// printWeightTable demonstrates the paper's Sec. 3.2.3 practical workflow:
// φ̂ computed off-line over a scenario grid, ready to be used as generic
// policy weights.
func printWeightTable() {
	facilities := []core.Facility{
		{Name: "PLC", Locations: 100, Resources: 80},
		{Name: "PLE", Locations: 400, Resources: 60},
		{Name: "PLJ", Locations: 800, Resources: 20},
	}
	thresholds := []float64{0, 250, 500, 750, 1000, 1250}
	volumes := []int{1, 20, 100}
	tbl, err := policy.BuildWeightTable(facilities, thresholds, volumes)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println("offline Shapley weight table (PLC/PLE/PLJ: L = 100/400/800, R = 80/60/20):")
	fmt.Printf("%10s %8s", "l", "K")
	for _, f := range tbl.Facilities {
		fmt.Printf(" %9s", f)
	}
	fmt.Println()
	for _, r := range tbl.Rows {
		fmt.Printf("%10.0f %8d", r.Threshold, r.Volume)
		for _, s := range r.Shares {
			fmt.Printf(" %8.2f%%", s*100)
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("Operators look up (or Blend) these rows by expected demand instead of")
	fmt.Println("running the coalition game online (Sec. 3.2.3).")
}

func printDiagrams() {
	fmt.Print(`== Figure 1: federation model ==

  facility 1 (L1 locations, R1 each)   facility 2 (L2, R2)   facility 3 (L3, R3)
        \                                  |                      /
         \                                 |                     /
          +----------------- federated location pool ---------------+
          | location l: capacity = sum of R_i over facilities at l  |
          | diversity  = number of distinct locations in the pool   |
          +----------------------------------------------------------+
                      |                             |
            external customers E            affiliated users U_i
            (commercial scenario)           (P2P scenario)

== Figure 3: the federation game ==

  individual contributions (L_i, R_i)        policy input
        |                                         |
        v                                         v
  [resource allocation / profit maximization]  --->  federation value V(N)
        |                                         |
        v                                         v
  [profit & value sharing: Shapley | nucleolus | proportional | priorities]
        |
        v
  individual shares s_i  --->  local provision decisions (value vs cost)
        |                                         |
        +------------------- feedback loop -------+
`)
}
