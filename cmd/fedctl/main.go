// Command fedctl is the client for fedd registries.
//
// Usage:
//
//	fedctl -addr 127.0.0.1:7001 ping
//	fedctl -addr 127.0.0.1:7001 resources
//	fedctl -addr 127.0.0.1:7001 -secret fed-secret slice create myexp -min-sites 15
//	fedctl -addr 127.0.0.1:7001 -secret fed-secret slice delete myexp
//	fedctl -addr 127.0.0.1:7001 shares -policy shapley
//	fedctl metrics 127.0.0.1:9090
//	fedctl status 127.0.0.1:9090
//	fedctl scenarios
//	fedctl submit -wait 127.0.0.1:9090 examples/scenarios/hetero5.json
//	fedctl submit -fig fig4 127.0.0.1:9090
//	fedctl runs 127.0.0.1:9090
//	fedctl result 127.0.0.1:9090 run-000001
//	fedctl cancel 127.0.0.1:9090 run-000001
//
// The submit/runs/result/cancel commands drive a fedd started with -api:
// experiments execute inside the daemon's scenario engine, and fedctl is a
// thin client of the same HTTP/JSON API the dashboard uses. submit prints
// the run id on stdout (status goes to stderr), so scripts can capture it;
// status and runs exit nonzero when the daemon is unreachable or not
// ready, so CI can gate on them instead of grepping output.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	// Imported for its init-time registration of the paper-figure scenarios,
	// so "fedctl scenarios" lists the same registry fedsim runs.
	_ "fedshare/internal/figures"

	"fedshare/internal/obs"
	"fedshare/internal/rspec"
	"fedshare/internal/scenario"
	"fedshare/internal/sfa"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7001", "registry address")
	secret := flag.String("secret", "", "federation secret (for slice operations)")
	user := flag.String("user", "fedctl", "credential subject")
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	// The metrics and status commands talk HTTP to a daemon's -metrics-addr
	// endpoint, not the SFA wire protocol, so they are handled before
	// dialing.
	if args[0] == "metrics" {
		if len(args) != 2 {
			usage()
		}
		if err := printMetrics(args[1]); err != nil {
			fail(err)
		}
		return
	}
	if args[0] == "status" {
		if len(args) != 2 {
			usage()
		}
		if err := printStatus(args[1]); err != nil {
			fail(err)
		}
		return
	}

	// The scenario-API commands are HTTP clients of a fedd -api daemon:
	// experiments execute in the daemon's engine, not in this process.
	switch args[0] {
	case "submit":
		cmdSubmit(args[1:])
		return
	case "runs":
		cmdRuns(args[1:])
		return
	case "result":
		cmdResult(args[1:])
		return
	case "cancel":
		cmdCancel(args[1:])
		return
	}

	// The scenarios command reads the in-process scenario registry — the
	// same one fedsim runs — so it too is handled before dialing.
	if args[0] == "scenarios" {
		fmt.Println("registered scenarios (run with fedsim -fig <id>):")
		for _, e := range scenario.Entries() {
			kind := e.Source()
			switch {
			case e.Variant:
				kind += ",variant"
			case e.Extension:
				kind += ",extension"
			}
			fmt.Printf("  %-12s %-14s %s\n", e.ID, kind, e.Title)
		}
		return
	}

	client, err := sfa.Dial(*addr, 10*time.Second)
	if err != nil {
		fail(err)
	}
	defer client.Close()

	cred := func() sfa.Credential {
		if *secret == "" {
			fmt.Fprintln(os.Stderr, "fedctl: -secret required for this operation")
			os.Exit(2)
		}
		return sfa.IssueCredential([]byte(*secret), *user, *user, time.Minute)
	}

	switch args[0] {
	case "ping":
		if err := client.Call(sfa.MethodPing, nil, nil); err != nil {
			fail(err)
		}
		fmt.Println("pong")
	case "record":
		var rec sfa.AuthorityRecord
		if err := client.Call(sfa.MethodGetRecord, nil, &rec); err != nil {
			fail(err)
		}
		fmt.Printf("%s at %s: %d sites\n", rec.Name, rec.Addr, rec.Sites)
	case "resources":
		fs := flag.NewFlagSet("resources", flag.ExitOnError)
		asXML := fs.Bool("xml", false, "emit a GENI-style advertisement RSpec")
		_ = fs.Parse(args[1:])
		var rl sfa.ResourceList
		if err := client.Call(sfa.MethodListResources, sfa.Empty{}, &rl); err != nil {
			fail(err)
		}
		if *asXML {
			if err := rspec.FromResourceList(rl).Encode(os.Stdout); err != nil {
				fail(err)
			}
			return
		}
		fmt.Printf("authority %s: %d sites\n", rl.Authority, len(rl.Sites))
		for _, s := range rl.Sites {
			fmt.Printf("  %-24s nodes=%d capacity=%d free=%d\n", s.SiteID, s.Nodes, s.Capacity, s.Free)
		}
	case "slice":
		if len(args) < 3 {
			usage()
		}
		switch args[1] {
		case "create":
			fs := flag.NewFlagSet("slice create", flag.ExitOnError)
			minSites := fs.Int("min-sites", 1, "diversity threshold")
			maxSites := fs.Int("max-sites", 0, "site cap (0 = unbounded)")
			per := fs.Int("per-site", 1, "slivers per site")
			_ = fs.Parse(args[3:])
			var resp sfa.SliceResponse
			if err := client.Call(sfa.MethodCreateSlice, sfa.SliceRequest{
				Credential: cred(), Name: args[2], Owner: *user,
				MinSites: *minSites, MaxSites: *maxSites, SliversPerSite: *per,
			}, &resp); err != nil {
				fail(err)
			}
			fmt.Printf("slice %s: %d sites, %d slivers\n", resp.Name, resp.Sites, len(resp.Slivers))
		case "delete":
			if err := client.Call(sfa.MethodDeleteSlice, sfa.DeleteRequest{
				Credential: cred(), Name: args[2],
			}, nil); err != nil {
				fail(err)
			}
			fmt.Printf("slice %s deleted\n", args[2])
		default:
			usage()
		}
	case "shares":
		fs := flag.NewFlagSet("shares", flag.ExitOnError)
		policy := fs.String("policy", "shapley", "sharing policy")
		_ = fs.Parse(args[1:])
		var resp sfa.SharesResponse
		if err := client.Call(sfa.MethodGetShares, sfa.SharesRequest{Policy: *policy}, &resp); err != nil {
			fail(err)
		}
		fmt.Printf("policy %s, federation value %.4g\n", resp.Policy, resp.GrandValue)
		if resp.Partial {
			fmt.Printf("PARTIAL: computed over the live sub-federation; down: %s\n",
				strings.Join(resp.Down, ", "))
		}
		names := make([]string, 0, len(resp.Shares))
		for n := range resp.Shares {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("  %-12s %6.2f%%\n", n, resp.Shares[n]*100)
		}
	case "usage":
		var resp sfa.UsageResponse
		if err := client.Call(sfa.MethodGetUsage, sfa.Empty{}, &resp); err != nil {
			fail(err)
		}
		fmt.Printf("authority %s: %d slices embedded\n", resp.Authority, resp.SlicesEmbedded)
		names := make([]string, 0, len(resp.CumulativeSlivers))
		for n := range resp.CumulativeSlivers {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("  %-12s %6d slivers  measured share %6.2f%%\n",
				n, resp.CumulativeSlivers[n], resp.MeasuredShares[n]*100)
		}
	default:
		usage()
	}
}

// printStatus probes a daemon's liveness and readiness endpoints with the
// same transient retry as the metrics command and reports both, plus the
// daemon's build identification from /version. It fails (non-zero exit)
// when the daemon is unreachable or not ready, so scripts can gate on
// `fedctl status`.
func printStatus(addr string) error {
	probe := func(path string) (string, bool, error) {
		resp, err := fetchWithRetry(addr, path)
		if err != nil {
			return "", false, err
		}
		defer resp.Body.Close()
		return resp.Status, resp.StatusCode == http.StatusOK, nil
	}
	health, alive, err := probe("/healthz")
	if err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	ready, isReady, err := probe("/readyz")
	if err != nil {
		return fmt.Errorf("readyz: %w", err)
	}
	fmt.Printf("healthz: %s\nreadyz:  %s\nversion: %s\n", health, ready, versionLine(addr))
	printPeerTable(addr)
	if !alive || !isReady {
		return fmt.Errorf("daemon at %s is not ready", addr)
	}
	return nil
}

// printPeerTable renders the daemon's /peersz per-peer health snapshot:
// lifecycle state, last successful contact, breaker state, and reconcile
// backlog. Probe failure or a 404 (a daemon predating the endpoint)
// degrades to silence — status's exit code reflects health, not peering.
func printPeerTable(addr string) {
	resp, err := fetchWithRetry(addr, "/peersz")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	var peers []sfa.PeerHealthInfo
	if json.NewDecoder(resp.Body).Decode(&peers) != nil {
		return
	}
	if len(peers) == 0 {
		fmt.Println("peers:   none")
		return
	}
	fmt.Printf("peers:\n  %-12s %-12s %-12s %-10s %s\n", "peer", "state", "last-seen", "breaker", "backlog")
	for _, p := range peers {
		lastSeen := "never"
		if p.LastSeenSeconds >= 0 {
			lastSeen = fmt.Sprintf("%.1fs ago", p.LastSeenSeconds)
		}
		breaker := p.Breaker
		if breaker == "" {
			breaker = "-"
		}
		fmt.Printf("  %-12s %-12s %-12s %-10s %d\n", p.Peer, p.State, lastSeen, breaker, p.Backlog)
	}
}

// versionLine renders a daemon's /version document on one line. Probe
// failure degrades to "unknown" — status's exit code reflects health, not
// whether the daemon predates the version endpoint.
func versionLine(addr string) string {
	resp, err := fetchWithRetry(addr, "/version")
	if err != nil {
		return "unknown"
	}
	defer resp.Body.Close()
	var v obs.BuildInfo
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&v) != nil {
		return "unknown"
	}
	parts := []string{v.Module, v.Version, v.Go}
	if v.Revision != "" {
		rev := v.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if v.Dirty {
			rev += "+dirty"
		}
		parts = append(parts, rev)
	}
	var kept []string
	for _, p := range parts {
		if p != "" {
			kept = append(kept, p)
		}
	}
	if len(kept) == 0 {
		return "unknown"
	}
	return strings.Join(kept, " ")
}

// apiError decodes a non-200 scenario-API response's structured error
// document into a Go error.
func apiError(resp *http.Response) error {
	defer resp.Body.Close()
	var e struct {
		Error string `json:"error"`
	}
	if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
		return fmt.Errorf("%s: %s", resp.Status, e.Error)
	}
	return fmt.Errorf("%s", resp.Status)
}

// runView mirrors the API's run document (api.RunJSON).
type runView struct {
	ID       string `json:"id"`
	Scenario string `json:"scenario"`
	State    string `json:"state"`
	Progress struct {
		Done  int `json:"done"`
		Total int `json:"total"`
	} `json:"progress"`
	Error          string  `json:"error"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
}

// terminal reports whether the run has finished (any way).
func (r runView) terminal() bool {
	switch r.State {
	case "done", "failed", "cancelled":
		return true
	}
	return false
}

// getRun fetches one run's state.
func getRun(addr, id string) (runView, error) {
	resp, err := fetchWithRetry(addr, "/api/v1/runs/"+id)
	if err != nil {
		return runView{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return runView{}, apiError(resp)
	}
	defer resp.Body.Close()
	var r runView
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		return runView{}, fmt.Errorf("decode run: %w", err)
	}
	return r, nil
}

// cmdSubmit posts a spec file (or a registered scenario id with -fig) to a
// fedd -api daemon. The run id is printed on stdout — and nothing else —
// so scripts can capture it; with -wait the command polls the run to a
// terminal state and exits nonzero unless it completed.
func cmdSubmit(args []string) {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	fig := fs.String("fig", "", "submit a registered scenario id instead of a spec file")
	wait := fs.Bool("wait", false, "poll until the run finishes; exit nonzero unless it completes")
	timeout := fs.Duration("timeout", 15*time.Minute, "polling deadline for -wait")
	_ = fs.Parse(args)
	rest := fs.Args()
	if len(rest) < 1 || (*fig == "") == (len(rest) < 2) {
		fmt.Fprintln(os.Stderr, "usage: fedctl submit [-fig id | spec.json after addr] [-wait] <metrics-addr> [spec.json]")
		os.Exit(2)
	}
	addr := rest[0]

	url := "http://" + addr + "/api/v1/runs"
	var body io.Reader
	if *fig != "" {
		url += "?scenario=" + *fig
	} else {
		data, err := os.ReadFile(rest[1])
		if err != nil {
			fail(err)
		}
		body = strings.NewReader(string(data))
	}
	httpc := &http.Client{Timeout: 30 * time.Second}
	resp, err := httpc.Post(url, "application/json", body)
	if err != nil {
		fail(fmt.Errorf("submit: %w", err))
	}
	if resp.StatusCode != http.StatusAccepted {
		fail(apiError(resp))
	}
	var r runView
	err = json.NewDecoder(resp.Body).Decode(&r)
	resp.Body.Close()
	if err != nil {
		fail(fmt.Errorf("decode run: %w", err))
	}
	fmt.Fprintf(os.Stderr, "submitted %s as %s\n", r.Scenario, r.ID)
	fmt.Println(r.ID)
	if !*wait {
		return
	}
	deadline := time.Now().Add(*timeout)
	for {
		if time.Now().After(deadline) {
			fail(fmt.Errorf("run %s still %s after %s", r.ID, r.State, *timeout))
		}
		r, err = getRun(addr, r.ID)
		if err != nil {
			fail(err)
		}
		if r.terminal() {
			break
		}
		time.Sleep(200 * time.Millisecond)
	}
	if r.State != "done" {
		fail(fmt.Errorf("run %s %s: %s", r.ID, r.State, r.Error))
	}
	fmt.Fprintf(os.Stderr, "run %s done in %.2fs\n", r.ID, r.ElapsedSeconds)
}

// cmdRuns lists a daemon's run table. Like status it gates: unreachable or
// not-ready daemons exit nonzero before the table is even fetched.
func cmdRuns(args []string) {
	if len(args) != 1 {
		fmt.Fprintln(os.Stderr, "usage: fedctl runs <metrics-addr>")
		os.Exit(2)
	}
	addr := args[0]
	ready, err := fetchWithRetry(addr, "/readyz")
	if err != nil {
		fail(fmt.Errorf("readyz: %w", err))
	}
	ready.Body.Close()
	if ready.StatusCode != http.StatusOK {
		fail(fmt.Errorf("daemon at %s is not ready (%s)", addr, ready.Status))
	}
	resp, err := fetchWithRetry(addr, "/api/v1/runs")
	if err != nil {
		fail(err)
	}
	if resp.StatusCode != http.StatusOK {
		fail(apiError(resp))
	}
	defer resp.Body.Close()
	var list struct {
		Runs []runView `json:"runs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		fail(fmt.Errorf("decode runs: %w", err))
	}
	if len(list.Runs) == 0 {
		fmt.Println("no runs")
		return
	}
	fmt.Printf("%-12s %-14s %-10s %-12s %s\n", "id", "scenario", "state", "progress", "elapsed")
	for _, r := range list.Runs {
		progress := "-"
		if r.Progress.Total > 0 {
			progress = fmt.Sprintf("%d/%d", r.Progress.Done, r.Progress.Total)
		}
		elapsed := ""
		if r.ElapsedSeconds > 0 {
			elapsed = fmt.Sprintf("%.2fs", r.ElapsedSeconds)
		}
		fmt.Printf("%-12s %-14s %-10s %-12s %s\n", r.ID, r.Scenario, r.State, progress, elapsed)
	}
}

// cmdResult streams a completed run's result JSON to stdout — the exact
// bytes the API serves, so output diffs clean against fedsim -result-json.
func cmdResult(args []string) {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: fedctl result <metrics-addr> <run-id>")
		os.Exit(2)
	}
	resp, err := fetchWithRetry(args[0], "/api/v1/runs/"+args[1]+"/result")
	if err != nil {
		fail(err)
	}
	if resp.StatusCode != http.StatusOK {
		fail(apiError(resp))
	}
	defer resp.Body.Close()
	if _, err := io.Copy(os.Stdout, resp.Body); err != nil {
		fail(err)
	}
}

// cmdCancel cancels a queued or running run.
func cmdCancel(args []string) {
	if len(args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: fedctl cancel <metrics-addr> <run-id>")
		os.Exit(2)
	}
	req, err := http.NewRequest(http.MethodDelete,
		"http://"+args[0]+"/api/v1/runs/"+args[1], nil)
	if err != nil {
		fail(err)
	}
	httpc := &http.Client{Timeout: 10 * time.Second}
	resp, err := httpc.Do(req)
	if err != nil {
		fail(err)
	}
	if resp.StatusCode != http.StatusOK {
		fail(apiError(resp))
	}
	defer resp.Body.Close()
	var r runView
	if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
		fail(fmt.Errorf("decode run: %w", err))
	}
	fmt.Printf("run %s %s\n", r.ID, r.State)
}

// printMetrics fetches a daemon's JSON metrics snapshot and renders it as
// a table: counters and gauges one line each, histograms as
// count/mean/max-bucket summaries.
func printMetrics(addr string) error {
	resp, err := fetchWithRetry(addr, "/metrics.json")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("metrics fetch: %s", resp.Status)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return fmt.Errorf("metrics decode: %w", err)
	}
	return renderMetrics(snap)
}

// fetchWithRetry GETs a path off a daemon's metrics endpoint, retrying
// transient connection failures (a daemon still coming up, or a metrics
// listener mid-restart) with doubling backoff. Non-200 responses are NOT
// retried: the daemon answered, so asking again changes nothing.
func fetchWithRetry(addr, path string) (*http.Response, error) {
	httpc := &http.Client{Timeout: 10 * time.Second}
	var lastErr error
	delay := 100 * time.Millisecond
	for attempt := 0; attempt < 5; attempt++ {
		if attempt > 0 {
			time.Sleep(delay)
			delay *= 2
		}
		resp, err := httpc.Get("http://" + addr + path)
		if err == nil {
			return resp, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("fetch %s (after retries): %w", path, lastErr)
}

func renderMetrics(snap obs.Snapshot) error {
	for _, f := range snap.Families {
		fmt.Printf("%s (%s)", f.Name, f.Type)
		if f.Help != "" {
			fmt.Printf("  %s", f.Help)
		}
		fmt.Println()
		for _, m := range f.Metrics {
			label := "-"
			if len(m.Labels) > 0 {
				keys := make([]string, 0, len(m.Labels))
				for k := range m.Labels {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				label = ""
				for i, k := range keys {
					if i > 0 {
						label += ","
					}
					label += k + "=" + m.Labels[k]
				}
			}
			if f.Type == "histogram" {
				mean := 0.0
				if m.Count > 0 {
					mean = m.Sum / float64(m.Count)
				}
				fmt.Printf("  %-40s count=%d sum=%.6gs mean=%.6gs\n", label, m.Count, m.Sum, mean)
				continue
			}
			fmt.Printf("  %-40s %g\n", label, m.Value)
		}
	}
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: fedctl [-addr A] [-secret S] <command>
commands:
  ping
  record
  resources [-xml]
  slice create <name> [-min-sites N] [-max-sites N] [-per-site N]
  slice delete <name>
  shares [-policy shapley|proportional|consumption|equal|nucleolus|banzhaf]
  usage
  metrics <metrics-addr>    fetch and render a daemon's /metrics.json snapshot
  status <metrics-addr>     probe /healthz, /readyz, /version and the /peersz peer
                            health table (non-zero exit if not ready)
  scenarios                 list the registered scenario specs (run with fedsim)
  submit [-fig id] [-wait] <metrics-addr> [spec.json]
                            submit an experiment to a fedd -api daemon (prints the run id)
  runs <metrics-addr>       list the daemon's run table (non-zero exit if not ready)
  result <metrics-addr> <run-id>
                            print a completed run's result JSON
  cancel <metrics-addr> <run-id>
                            cancel a queued or running run`)
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fedctl:", err)
	os.Exit(1)
}
