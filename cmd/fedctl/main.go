// Command fedctl is the client for fedd registries.
//
// Usage:
//
//	fedctl -addr 127.0.0.1:7001 ping
//	fedctl -addr 127.0.0.1:7001 resources
//	fedctl -addr 127.0.0.1:7001 -secret fed-secret slice create myexp -min-sites 15
//	fedctl -addr 127.0.0.1:7001 -secret fed-secret slice delete myexp
//	fedctl -addr 127.0.0.1:7001 shares -policy shapley
//	fedctl metrics 127.0.0.1:9090
//	fedctl status 127.0.0.1:9090
//	fedctl scenarios
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"time"

	// Imported for its init-time registration of the paper-figure scenarios,
	// so "fedctl scenarios" lists the same registry fedsim runs.
	_ "fedshare/internal/figures"

	"fedshare/internal/obs"
	"fedshare/internal/rspec"
	"fedshare/internal/scenario"
	"fedshare/internal/sfa"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7001", "registry address")
	secret := flag.String("secret", "", "federation secret (for slice operations)")
	user := flag.String("user", "fedctl", "credential subject")
	flag.Parse()

	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	// The metrics and status commands talk HTTP to a daemon's -metrics-addr
	// endpoint, not the SFA wire protocol, so they are handled before
	// dialing.
	if args[0] == "metrics" {
		if len(args) != 2 {
			usage()
		}
		if err := printMetrics(args[1]); err != nil {
			fail(err)
		}
		return
	}
	if args[0] == "status" {
		if len(args) != 2 {
			usage()
		}
		if err := printStatus(args[1]); err != nil {
			fail(err)
		}
		return
	}

	// The scenarios command reads the in-process scenario registry — the
	// same one fedsim runs — so it too is handled before dialing.
	if args[0] == "scenarios" {
		fmt.Println("registered scenarios (run with fedsim -fig <id>):")
		for _, e := range scenario.Entries() {
			kind := e.Source()
			switch {
			case e.Variant:
				kind += ",variant"
			case e.Extension:
				kind += ",extension"
			}
			fmt.Printf("  %-12s %-14s %s\n", e.ID, kind, e.Title)
		}
		return
	}

	client, err := sfa.Dial(*addr, 10*time.Second)
	if err != nil {
		fail(err)
	}
	defer client.Close()

	cred := func() sfa.Credential {
		if *secret == "" {
			fmt.Fprintln(os.Stderr, "fedctl: -secret required for this operation")
			os.Exit(2)
		}
		return sfa.IssueCredential([]byte(*secret), *user, *user, time.Minute)
	}

	switch args[0] {
	case "ping":
		if err := client.Call(sfa.MethodPing, nil, nil); err != nil {
			fail(err)
		}
		fmt.Println("pong")
	case "record":
		var rec sfa.AuthorityRecord
		if err := client.Call(sfa.MethodGetRecord, nil, &rec); err != nil {
			fail(err)
		}
		fmt.Printf("%s at %s: %d sites\n", rec.Name, rec.Addr, rec.Sites)
	case "resources":
		fs := flag.NewFlagSet("resources", flag.ExitOnError)
		asXML := fs.Bool("xml", false, "emit a GENI-style advertisement RSpec")
		_ = fs.Parse(args[1:])
		var rl sfa.ResourceList
		if err := client.Call(sfa.MethodListResources, sfa.Empty{}, &rl); err != nil {
			fail(err)
		}
		if *asXML {
			if err := rspec.FromResourceList(rl).Encode(os.Stdout); err != nil {
				fail(err)
			}
			return
		}
		fmt.Printf("authority %s: %d sites\n", rl.Authority, len(rl.Sites))
		for _, s := range rl.Sites {
			fmt.Printf("  %-24s nodes=%d capacity=%d free=%d\n", s.SiteID, s.Nodes, s.Capacity, s.Free)
		}
	case "slice":
		if len(args) < 3 {
			usage()
		}
		switch args[1] {
		case "create":
			fs := flag.NewFlagSet("slice create", flag.ExitOnError)
			minSites := fs.Int("min-sites", 1, "diversity threshold")
			maxSites := fs.Int("max-sites", 0, "site cap (0 = unbounded)")
			per := fs.Int("per-site", 1, "slivers per site")
			_ = fs.Parse(args[3:])
			var resp sfa.SliceResponse
			if err := client.Call(sfa.MethodCreateSlice, sfa.SliceRequest{
				Credential: cred(), Name: args[2], Owner: *user,
				MinSites: *minSites, MaxSites: *maxSites, SliversPerSite: *per,
			}, &resp); err != nil {
				fail(err)
			}
			fmt.Printf("slice %s: %d sites, %d slivers\n", resp.Name, resp.Sites, len(resp.Slivers))
		case "delete":
			if err := client.Call(sfa.MethodDeleteSlice, sfa.DeleteRequest{
				Credential: cred(), Name: args[2],
			}, nil); err != nil {
				fail(err)
			}
			fmt.Printf("slice %s deleted\n", args[2])
		default:
			usage()
		}
	case "shares":
		fs := flag.NewFlagSet("shares", flag.ExitOnError)
		policy := fs.String("policy", "shapley", "sharing policy")
		_ = fs.Parse(args[1:])
		var resp sfa.SharesResponse
		if err := client.Call(sfa.MethodGetShares, sfa.SharesRequest{Policy: *policy}, &resp); err != nil {
			fail(err)
		}
		fmt.Printf("policy %s, federation value %.4g\n", resp.Policy, resp.GrandValue)
		names := make([]string, 0, len(resp.Shares))
		for n := range resp.Shares {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("  %-12s %6.2f%%\n", n, resp.Shares[n]*100)
		}
	case "usage":
		var resp sfa.UsageResponse
		if err := client.Call(sfa.MethodGetUsage, sfa.Empty{}, &resp); err != nil {
			fail(err)
		}
		fmt.Printf("authority %s: %d slices embedded\n", resp.Authority, resp.SlicesEmbedded)
		names := make([]string, 0, len(resp.CumulativeSlivers))
		for n := range resp.CumulativeSlivers {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("  %-12s %6d slivers  measured share %6.2f%%\n",
				n, resp.CumulativeSlivers[n], resp.MeasuredShares[n]*100)
		}
	default:
		usage()
	}
}

// printStatus probes a daemon's liveness and readiness endpoints with the
// same transient retry as the metrics command and reports both. It fails
// (non-zero exit) when the daemon is unreachable or not ready, so scripts
// can gate on `fedctl status`.
func printStatus(addr string) error {
	probe := func(path string) (string, bool, error) {
		resp, err := fetchWithRetry(addr, path)
		if err != nil {
			return "", false, err
		}
		defer resp.Body.Close()
		return resp.Status, resp.StatusCode == http.StatusOK, nil
	}
	health, alive, err := probe("/healthz")
	if err != nil {
		return fmt.Errorf("healthz: %w", err)
	}
	ready, isReady, err := probe("/readyz")
	if err != nil {
		return fmt.Errorf("readyz: %w", err)
	}
	fmt.Printf("healthz: %s\nreadyz:  %s\n", health, ready)
	if !alive || !isReady {
		return fmt.Errorf("daemon at %s is not ready", addr)
	}
	return nil
}

// printMetrics fetches a daemon's JSON metrics snapshot and renders it as
// a table: counters and gauges one line each, histograms as
// count/mean/max-bucket summaries.
func printMetrics(addr string) error {
	resp, err := fetchWithRetry(addr, "/metrics.json")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("metrics fetch: %s", resp.Status)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return fmt.Errorf("metrics decode: %w", err)
	}
	return renderMetrics(snap)
}

// fetchWithRetry GETs a path off a daemon's metrics endpoint, retrying
// transient connection failures (a daemon still coming up, or a metrics
// listener mid-restart) with doubling backoff. Non-200 responses are NOT
// retried: the daemon answered, so asking again changes nothing.
func fetchWithRetry(addr, path string) (*http.Response, error) {
	httpc := &http.Client{Timeout: 10 * time.Second}
	var lastErr error
	delay := 100 * time.Millisecond
	for attempt := 0; attempt < 5; attempt++ {
		if attempt > 0 {
			time.Sleep(delay)
			delay *= 2
		}
		resp, err := httpc.Get("http://" + addr + path)
		if err == nil {
			return resp, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("fetch %s (after retries): %w", path, lastErr)
}

func renderMetrics(snap obs.Snapshot) error {
	for _, f := range snap.Families {
		fmt.Printf("%s (%s)", f.Name, f.Type)
		if f.Help != "" {
			fmt.Printf("  %s", f.Help)
		}
		fmt.Println()
		for _, m := range f.Metrics {
			label := "-"
			if len(m.Labels) > 0 {
				keys := make([]string, 0, len(m.Labels))
				for k := range m.Labels {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				label = ""
				for i, k := range keys {
					if i > 0 {
						label += ","
					}
					label += k + "=" + m.Labels[k]
				}
			}
			if f.Type == "histogram" {
				mean := 0.0
				if m.Count > 0 {
					mean = m.Sum / float64(m.Count)
				}
				fmt.Printf("  %-40s count=%d sum=%.6gs mean=%.6gs\n", label, m.Count, m.Sum, mean)
				continue
			}
			fmt.Printf("  %-40s %g\n", label, m.Value)
		}
	}
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: fedctl [-addr A] [-secret S] <command>
commands:
  ping
  record
  resources [-xml]
  slice create <name> [-min-sites N] [-max-sites N] [-per-site N]
  slice delete <name>
  shares [-policy shapley|proportional|consumption|equal|nucleolus|banzhaf]
  usage
  metrics <metrics-addr>    fetch and render a daemon's /metrics.json snapshot
  status <metrics-addr>     probe a daemon's /healthz and /readyz (non-zero exit if not ready)
  scenarios                 list the registered scenario specs (run with fedsim)`)
	os.Exit(2)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "fedctl:", err)
	os.Exit(1)
}
