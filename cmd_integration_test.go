// Integration tests for the command-line tools: build the real binaries and
// drive a two-authority federation end to end over loopback TCP.
package fedshare_test

import (
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildTools compiles the three binaries once into a temp dir.
func buildTools(t *testing.T) (fedd, fedctl, fedsim string) {
	t.Helper()
	dir := t.TempDir()
	for _, tool := range []string{"fedd", "fedctl", "fedsim"} {
		out := filepath.Join(dir, tool)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+tool)
		cmd.Env = os.Environ()
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", tool, err, msg)
		}
	}
	return filepath.Join(dir, "fedd"), filepath.Join(dir, "fedctl"), filepath.Join(dir, "fedsim")
}

// freePort reserves an ephemeral TCP port and returns the address.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	return addr
}

func waitReachable(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			_ = conn.Close()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("daemon at %s never came up", addr)
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, out)
	}
	return string(out)
}

func TestCLIFederationEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skip in -short mode")
	}
	fedd, fedctl, _ := buildTools(t)
	addrA, addrB := freePort(t), freePort(t)

	// Two daemons: PLC (4 sites), PLE (8 sites) peering with PLC.
	dA := exec.Command(fedd, "-name", "PLC", "-listen", addrA,
		"-sites", "4", "-nodes", "1", "-capacity", "2", "-secret", "it")
	if err := dA.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = dA.Process.Kill(); _, _ = dA.Process.Wait() }()
	waitReachable(t, addrA)

	dB := exec.Command(fedd, "-name", "PLE", "-listen", addrB,
		"-sites", "8", "-nodes", "1", "-capacity", "2", "-secret", "it",
		"-peer", addrA)
	if err := dB.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = dB.Process.Kill(); _, _ = dB.Process.Wait() }()
	waitReachable(t, addrB)
	// Give the peering handshake a moment to complete on both sides.
	time.Sleep(300 * time.Millisecond)

	// fedctl ping / record / resources.
	if out := run(t, fedctl, "-addr", addrA, "ping"); !strings.Contains(out, "pong") {
		t.Errorf("ping: %q", out)
	}
	if out := run(t, fedctl, "-addr", addrA, "record"); !strings.Contains(out, "PLC") {
		t.Errorf("record: %q", out)
	}
	out := run(t, fedctl, "-addr", addrA, "resources")
	if !strings.Contains(out, "4 sites") {
		t.Errorf("resources: %q", out)
	}
	// XML RSpec export.
	out = run(t, fedctl, "-addr", addrA, "resources", "-xml")
	if !strings.Contains(out, `<rspec type="advertisement" authority="PLC">`) {
		t.Errorf("rspec: %q", out)
	}

	// Federated slice: 10 sites needs both authorities (4 + 8).
	out = run(t, fedctl, "-addr", addrA, "-secret", "it",
		"slice", "create", "global", "-min-sites", "10")
	if !strings.Contains(out, "slice global:") {
		t.Errorf("slice create: %q", out)
	}

	// Usage accounting reflects both contributors.
	out = run(t, fedctl, "-addr", addrA, "usage")
	if !strings.Contains(out, "PLC") || !strings.Contains(out, "PLE") {
		t.Errorf("usage: %q", out)
	}

	// Shares over the wire.
	out = run(t, fedctl, "-addr", addrB, "shares", "-policy", "shapley")
	if !strings.Contains(out, "PLC") || !strings.Contains(out, "PLE") || !strings.Contains(out, "%") {
		t.Errorf("shares: %q", out)
	}

	// Cleanup via the protocol.
	out = run(t, fedctl, "-addr", addrA, "-secret", "it", "slice", "delete", "global")
	if !strings.Contains(out, "deleted") {
		t.Errorf("slice delete: %q", out)
	}
}

// TestCLIGracefulDrain covers the daemon's shutdown path: SIGTERM flips
// /readyz to 503 during the lame-duck grace period, the daemon drains its
// connections, and the process exits cleanly.
func TestCLIGracefulDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skip in -short mode")
	}
	fedd, _, _ := buildTools(t)
	addrA, addrB, maddr := freePort(t), freePort(t), freePort(t)

	dA := exec.Command(fedd, "-name", "PLC", "-listen", addrA,
		"-sites", "2", "-nodes", "1", "-capacity", "2", "-secret", "it")
	if err := dA.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = dA.Process.Kill(); _, _ = dA.Process.Wait() }()
	waitReachable(t, addrA)

	var logB strings.Builder
	dB := exec.Command(fedd, "-name", "PLE", "-listen", addrB,
		"-sites", "2", "-nodes", "1", "-capacity", "2", "-secret", "it",
		"-peer", addrA, "-metrics-addr", maddr, "-drain-grace", "3s")
	dB.Stderr = &logB
	if err := dB.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = dB.Process.Kill(); _, _ = dB.Process.Wait() }()
	waitReachable(t, addrB)
	waitReachable(t, maddr)

	httpc := &http.Client{Timeout: 2 * time.Second}
	get := func(path string) (int, string) {
		resp, err := httpc.Get("http://" + maddr + path)
		if err != nil {
			return 0, err.Error()
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}

	if code, _ := get("/healthz"); code != 200 {
		t.Fatalf("/healthz = %d, want 200", code)
	}
	if code, _ := get("/readyz"); code != 200 {
		t.Fatalf("/readyz = %d, want 200 before drain", code)
	}
	// The daemon exposes the fault-tolerance metric families: the server's
	// lease/dedup instrumentation and (because -peer created an SFA client)
	// the client retry/breaker families.
	_, metrics := get("/metrics")
	for _, family := range []string{
		"fedshare_sfa_leases_active",
		"fedshare_sfa_leases_expired_total",
		"fedshare_sfa_dedup_replays_total",
		"fedshare_sfa_client_retries_total",
		"fedshare_sfa_client_redials_total",
		"fedshare_sfa_client_breaker_state",
	} {
		if !strings.Contains(metrics, family) {
			t.Errorf("/metrics missing family %s", family)
		}
	}

	if err := dB.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	// Within the 3s lame-duck window the process is still alive and
	// readiness reports 503.
	flipped := false
	for i := 0; i < 100; i++ {
		if code, _ := get("/readyz"); code == 503 {
			flipped = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !flipped {
		t.Error("/readyz never flipped to 503 after SIGTERM")
	}
	if code, _ := get("/healthz"); code != 200 {
		t.Error("/healthz should stay 200 while draining")
	}

	done := make(chan error, 1)
	go func() { done <- dB.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("fedd exited uncleanly: %v\n%s", err, logB.String())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("fedd did not exit after SIGTERM")
	}
	if out := logB.String(); !strings.Contains(out, "draining") {
		t.Errorf("daemon log missing drain notice:\n%s", out)
	}
}

func TestCLIFedsim(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skip in -short mode")
	}
	_, _, fedsim := buildTools(t)
	out := run(t, fedsim, "-fig", "fig2")
	if !strings.Contains(out, "fig2") || !strings.Contains(out, "d=1.0") {
		t.Errorf("fig2 output: %q", out)
	}
	out = run(t, fedsim, "-diagram")
	if !strings.Contains(out, "federation model") {
		t.Errorf("diagram output: %q", out)
	}
	out = run(t, fedsim, "-fig", "fig4", "-chart")
	if !strings.Contains(out, "legend:") {
		t.Errorf("chart output missing legend")
	}
	// Unknown figure exits non-zero.
	cmd := exec.Command(fedsim, "-fig", "nope")
	if err := cmd.Run(); err == nil {
		t.Error("unknown figure should exit non-zero")
	}
}

// TestCLIServedExperiments drives the scenario service plane end to end:
// fedd -api serves the engine over HTTP, fedctl submits a spec file and
// streams back the result, and the bytes match what fedsim produces for the
// same spec in-process — the contract the CI api-smoke job also enforces.
func TestCLIServedExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries; skip in -short mode")
	}
	fedd, fedctl, fedsim := buildTools(t)
	addr, maddr := freePort(t), freePort(t)

	d := exec.Command(fedd, "-name", "PLC", "-listen", addr,
		"-sites", "2", "-nodes", "1", "-capacity", "2", "-secret", "it",
		"-metrics-addr", maddr, "-api")
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = d.Process.Kill(); _, _ = d.Process.Wait() }()
	waitReachable(t, addr)
	waitReachable(t, maddr)

	// fedctl status against the API address succeeds and reports a version.
	out := run(t, fedctl, "status", maddr)
	if !strings.Contains(out, "ready") || !strings.Contains(out, "version:") {
		t.Errorf("status: %q", out)
	}

	spec := "examples/scenarios/hetero5.json"
	// Submit and wait; stdout carries the bare run id (progress goes to
	// stderr), so scripts can pipe it straight into result/cancel.
	stdout := func(bin string, args ...string) string {
		t.Helper()
		cmd := exec.Command(bin, args...)
		var sb, eb strings.Builder
		cmd.Stdout, cmd.Stderr = &sb, &eb
		if err := cmd.Run(); err != nil {
			t.Fatalf("%s %v: %v\n%s", filepath.Base(bin), args, err, eb.String())
		}
		return sb.String()
	}
	id := strings.TrimSpace(stdout(fedctl, "submit", "-wait", maddr, spec))
	if id == "" {
		t.Fatal("fedctl submit printed no run id")
	}

	// The run table lists it as done.
	out = run(t, fedctl, "runs", maddr)
	if !strings.Contains(out, id) || !strings.Contains(out, "done") {
		t.Errorf("runs: %q", out)
	}

	apiJSON := stdout(fedctl, "result", maddr, id)
	cliJSON := stdout(fedsim, "-scenario", spec, "-result-json")
	if apiJSON != cliJSON {
		t.Errorf("API result differs from fedsim -result-json (%d vs %d bytes)",
			len(apiJSON), len(cliJSON))
	}

	// The dashboard is served from the same listener.
	httpc := &http.Client{Timeout: 2 * time.Second}
	resp, err := httpc.Get("http://" + maddr + "/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "fedshare") {
		t.Errorf("dashboard: %d %q", resp.StatusCode, body)
	}

	// Cancelling a finished run exits non-zero (409 from the API).
	cancel := exec.Command(fedctl, "cancel", maddr, id)
	if err := cancel.Run(); err == nil {
		t.Error("cancelling a finished run should exit non-zero")
	}
}
