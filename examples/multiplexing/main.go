// Multiplexing example (Sec. 3.2.1): holding time drives how much extra
// value federation creates through statistical multiplexing. We simulate a
// two-facility loss network under fixed offered load and sweep the holding
// time, and validate the simulator against Erlang-B on a single station.
package main

import (
	"fmt"
	"log"
	"math"

	"fedshare/internal/economics"
	"fedshare/internal/loss"
)

func main() {
	// Validation first: M/D/5/5 blocking vs Erlang-B at 4 erlangs.
	lambda, hold := 8.0, 0.5
	m, err := loss.Simulate(loss.Config{
		Stations: []loss.Station{{Label: "s", Count: 5, Capacity: 1}},
		Arrivals: []economics.ArrivalSpec{{
			Type: economics.ExperimentType{
				Name: "unit", MinLocations: 1, MaxLocations: 1,
				Resources: 1, HoldingTime: hold, Shape: 1,
			},
			Rate: lambda,
		}},
		Horizon: 4000,
		Seed:    11,
	})
	if err != nil {
		log.Fatal(err)
	}
	theory := loss.ErlangB(5, lambda*hold)
	fmt.Printf("Erlang-B validation: simulated blocking %.4f vs theory %.4f (|Δ| = %.4f)\n\n",
		m.Blocking["unit"], theory, math.Abs(m.Blocking["unit"]-theory))

	// The sweep: two facilities of 4 locations each; experiments need 3
	// distinct locations; offered load constant across the sweep.
	base := loss.Config{
		Stations: []loss.Station{
			{Label: "west", Count: 4, Capacity: 1},
			{Label: "east", Count: 4, Capacity: 1},
		},
		Arrivals: []economics.ArrivalSpec{{
			Type: economics.ExperimentType{
				Name: "exp", MinLocations: 3, MaxLocations: 3,
				Resources: 1, HoldingTime: 1, Shape: 1,
			},
			Rate: 2,
		}},
		Horizon: 4000,
		Seed:    23,
	}
	series, err := loss.HoldingTimeSweep(base, []float64{1, 0.5, 0.2, 0.1, 0.05})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("relative federation gain vs holding time (offered load fixed):")
	fmt.Printf("%12s %24s\n", "holding t", "gain (fed - isolated)/offered")
	for _, p := range series.Points {
		fmt.Printf("%12.2f %24.4f\n", p.X, p.Y)
	}
	fmt.Println()
	fmt.Println("Shorter holding times let the pooled 8-location system absorb bursts")
	fmt.Println("that would block a 4-location facility — the statistical-multiplexing")
	fmt.Println("mechanism behind the paper's super-additivity condition (Sec. 3.2.1).")
}
