// Incentives example (the Fig 9 story): how does a facility's payoff react
// to its own provision level under different sharing rules, and where does
// best-response dynamics settle once provision costs enter?
package main

import (
	"fmt"
	"log"
	"math"

	"fedshare/internal/core"
	"fedshare/internal/economics"
	"fedshare/internal/policy"
)

func main() {
	// Demand: saturating identical experiments with diversity threshold 400.
	demand, err := economics.NewWorkload(economics.DemandClass{
		Type: economics.ExperimentType{
			Name: "exp", MinLocations: 400, MaxLocations: math.Inf(1),
			Resources: 1, HoldingTime: 1, Shape: 1,
		},
		Count: 100,
	})
	if err != nil {
		log.Fatal(err)
	}
	model, err := core.NewModel([]core.Facility{
		{Name: "F1", Locations: 100, Resources: 80},
		{Name: "F2", Locations: 400, Resources: 60},
		{Name: "F3", Locations: 800, Resources: 20},
	}, demand)
	if err != nil {
		log.Fatal(err)
	}

	// Sweep facility 1's location count and watch its profit under Shapley
	// vs proportional sharing.
	var grid []int
	for l := 0; l <= 1000; l += 100 {
		grid = append(grid, l)
	}
	shap, err := core.IncentiveCurve(model, 0, grid, core.ShapleyPolicy{})
	if err != nil {
		log.Fatal(err)
	}
	prop, err := core.IncentiveCurve(model, 0, grid, core.ProportionalPolicy{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("facility 1 profit vs own location count (l = 400, demand saturates):")
	fmt.Printf("%8s %14s %14s\n", "L1", "shapley", "proportional")
	for i := range shap.Points {
		fmt.Printf("%8.0f %14.1f %14.1f\n", shap.Points[i].X, shap.Points[i].Y, prop.Points[i].Y)
	}

	jumps := policy.Jumps(shap, 0.12)
	if len(jumps) > 0 {
		fmt.Println("\nShapley threshold jumps (provision instability risk, Sec 4.4):")
		for _, j := range jumps {
			fmt.Printf("  at L1=%.0f: payoff jumps by %+.1f\n", j.X, j.Delta)
		}
	}

	// Best-response dynamics: each facility picks its provision level on a
	// grid, trading Shapley profit against a per-location cost.
	fmt.Println("\nbest-response provision game (cost = 8 per location):")
	players := make([]policy.Player, 3)
	maxLoc := []int{1000, 1000, 1000}
	for i := range players {
		var opts []policy.Option
		for l := 0; l <= maxLoc[i]; l += 200 {
			opts = append(opts, policy.Option{Locations: l, Resources: model.Facilities[i].Resources})
		}
		players[i] = policy.Player{Options: opts, Cost: economics.Cost{Alpha: 8}}
	}
	dyn, err := policy.NewDynamics(model, players, core.ShapleyPolicy{})
	if err != nil {
		log.Fatal(err)
	}
	eq, err := dyn.Run(30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  converged=%v after %d rounds\n", eq.Converged, eq.Rounds)
	for i, ci := range eq.Choice {
		opt := players[i].Options[ci]
		fmt.Printf("  %s provides %4d locations, net payoff %8.1f\n",
			model.Facilities[i].Name, opt.Locations, eq.Payoffs[i])
	}
}
