// Commercial scenario: external customers (a CDN operator, P2P researchers,
// a measurement company — the paper's three archetypes) pay for access to
// the federated infrastructure; the authorities must split the subscription
// profit. We show how the demand mixture changes who deserves what.
package main

import (
	"fmt"
	"log"

	"fedshare/internal/core"
	"fedshare/internal/economics"
)

func model(demand *economics.Workload) *core.Model {
	m, err := core.NewModel([]core.Facility{
		{Name: "PLC", Locations: 100, Resources: 80},
		{Name: "PLE", Locations: 400, Resources: 50},
		{Name: "PLJ", Locations: 800, Resources: 30},
	}, demand)
	if err != nil {
		log.Fatal(err)
	}
	return m
}

func printShares(label string, m *core.Model) {
	fmt.Printf("%s (V = %.0f)\n", label, m.GrandValue())
	for _, p := range []core.Policy{
		core.ShapleyPolicy{}, core.ProportionalPolicy{}, core.ConsumptionPolicy{},
	} {
		shares, err := p.Shares(m)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-13s", p.Name())
		for i, f := range m.Facilities {
			fmt.Printf("  %s=%5.1f%%", f.Name, shares[i]*100)
		}
		fmt.Println()
	}
	fmt.Println()
}

func main() {
	fmt.Println("Commercial federation: how should subscription profit be split?")
	fmt.Println()

	// Workload 1: capacity-hungry P2P experiments only (l = 40 is easy).
	p2pOnly, err := economics.NewWorkload(
		economics.DemandClass{Type: economics.P2PExperiment, Count: 60},
	)
	if err != nil {
		log.Fatal(err)
	}
	printShares("P2P-experiment demand (low diversity pressure)", model(p2pOnly))

	// Workload 2: measurement studies needing 500 distinct locations.
	measurement, err := economics.NewWorkload(
		economics.DemandClass{Type: economics.MeasurementExperiment, Count: 20},
	)
	if err != nil {
		log.Fatal(err)
	}
	printShares("Measurement demand (l = 500: only big location sets count)", model(measurement))

	// Workload 3: the realistic mixture, including the CDN service with its
	// heavier per-location footprint (r = 4) and bounded spread.
	mixture, err := economics.NewWorkload(
		economics.DemandClass{Type: economics.P2PExperiment, Count: 30},
		economics.DemandClass{Type: economics.CDNService, Count: 5},
		economics.DemandClass{Type: economics.MeasurementExperiment, Count: 10},
	)
	if err != nil {
		log.Fatal(err)
	}
	printShares("Mixed demand (P2P + CDN + measurement)", model(mixture))

	fmt.Println("Observation: under diversity-hungry demand the Shapley share of the")
	fmt.Println("location-rich authority rises well above its resource-proportional")
	fmt.Println("share — exactly the distortion the paper quantifies (Sec. 4.3).")
}
