// Quickstart: three facilities federate, one diversity-hungry experiment
// arrives, and we compare how the sharing rules split the federation value.
//
// This reproduces the paper's worked example (Sec. 4.1): facilities with
// 100, 400 and 800 locations facing an experiment that needs 500 distinct
// locations.
package main

import (
	"fmt"
	"log"
	"math"

	"fedshare/internal/core"
	"fedshare/internal/economics"
)

func main() {
	// One experiment demanding at least 500 distinct locations, one unit
	// of capacity at each, linear utility.
	demand, err := economics.NewWorkload(economics.DemandClass{
		Type: economics.ExperimentType{
			Name:         "measurement",
			MinLocations: 500,
			MaxLocations: math.Inf(1),
			Resources:    1,
			HoldingTime:  1,
			Shape:        1,
		},
		Count: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	model, err := core.NewModel([]core.Facility{
		{Name: "PLC", Locations: 100, Resources: 1},
		{Name: "PLE", Locations: 400, Resources: 1},
		{Name: "PLJ", Locations: 800, Resources: 1},
	}, demand)
	if err != nil {
		log.Fatal(err)
	}

	report, err := core.Analyze(model,
		core.ShapleyPolicy{},
		core.ProportionalPolicy{},
		core.NucleolusPolicy{},
		core.EqualPolicy{},
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("federation value V(N) = %.0f\n", report.GrandValue)
	fmt.Printf("superadditive=%v convex=%v core nonempty=%v\n\n",
		report.Superadditive, report.Convex, report.CoreNonempty)

	fmt.Println("coalition values:")
	for _, name := range []string{"PLC", "PLE", "PLJ", "PLC+PLE", "PLC+PLJ", "PLE+PLJ", "PLC+PLE+PLJ"} {
		fmt.Printf("  V(%-12s) = %6.0f\n", name, report.CoalitionValue[name])
	}

	fmt.Println("\nshares by policy:")
	for _, policy := range []string{"shapley", "proportional", "nucleolus", "equal"} {
		shares := report.Shares[policy]
		fmt.Printf("  %-12s", policy)
		for i, f := range model.Facilities {
			fmt.Printf("  %s=%5.1f%%", f.Name, shares[i]*100)
		}
		fmt.Println()
	}

	fmt.Println("\nTakeaway: the proportional rule pays PLE 4/13 of the value, but its")
	fmt.Println("expected marginal contribution (Shapley) is well below that — small")
	fmt.Println("facilities matter less once diversity thresholds bind.")
}
