// Overlap example (the paper's Fig 1 setting): facilities whose location
// sets overlap contribute less diversity than their raw location counts
// suggest. We sample the Sec. 2.1 overlap model o_ij and show how shrinking
// the location universe (more overlap) redistributes the Shapley shares.
package main

import (
	"fmt"
	"log"
	"math"

	"fedshare/internal/core"
	"fedshare/internal/economics"
	"fedshare/internal/stats"
)

func main() {
	// Three facilities with 30 locations each (Fig 1 uses N = 3 over 30
	// distinct locations), one experiment needing 40 distinct locations.
	demand, err := economics.NewWorkload(economics.DemandClass{
		Type: economics.ExperimentType{
			Name: "overlay", MinLocations: 40, MaxLocations: math.Inf(1),
			Resources: 1, HoldingTime: 1, Shape: 1,
		},
		Count: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Shapley shares as the location universe shrinks (more overlap):")
	fmt.Printf("%10s %10s %12s %8s %8s %8s\n", "universe", "overlap", "V(N)", "F1", "F2", "F3")
	for _, universe := range []int{10000, 120, 90, 60, 45} {
		m, err := core.NewModel([]core.Facility{
			{Name: "F1", Locations: 30, Resources: 1},
			{Name: "F2", Locations: 30, Resources: 1},
			{Name: "F3", Locations: 30, Resources: 1},
		}, demand)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := m.WithOverlap(universe, stats.NewRand(42)); err != nil {
			log.Fatal(err)
		}
		shares, err := core.ShapleyPolicy{}.Shares(m)
		if err != nil {
			log.Fatal(err)
		}
		// Expected pairwise overlap probability for one location:
		// 30/universe.
		fmt.Printf("%10d %9.0f%% %12.0f %7.1f%% %7.1f%% %7.1f%%\n",
			universe, 100*30.0/float64(universe), m.GrandValue(),
			shares[0]*100, shares[1]*100, shares[2]*100)
	}

	fmt.Println()
	fmt.Println("With a huge universe the three facilities are perfectly symmetric and")
	fmt.Println("the 90 distinct locations clear the 40-location threshold easily. As")
	fmt.Println("overlap grows, the federation's total diversity V(N) collapses from 90")
	fmt.Println("toward the universe size, and the shares drift apart: the facility")
	fmt.Println("whose sampled locations happen to be rarest becomes (slightly) more")
	fmt.Println("pivotal, even though all three contribute 30 nominal locations. The")
	fmt.Println("headline effect of overlap is on the value itself — duplicated")
	fmt.Println("locations add capacity but no diversity (Sec. 2.1).")
}
