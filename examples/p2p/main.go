// P2P scenario: no money changes hands — the federation's value is the
// utility of the facilities' own users, and the allocation itself must be
// incentive-compatible (problem (3) of the paper): every facility's users
// must do at least as well as they would on their facility alone.
package main

import (
	"fmt"
	"log"

	"fedshare/internal/allocation"
)

func main() {
	// Three facilities with very different supply/demand balances:
	//   - "BigLab" has many locations and modest demand;
	//   - "Crowded" has huge demand and little supply;
	//   - "Tiny" cannot host its users' diversity needs alone.
	facilities := []allocation.FacilityContribution{
		{
			Name:    "BigLab",
			Classes: []allocation.Class{{Label: "BigLab", Count: 30, Capacity: 4}},
			Requests: []allocation.Request{
				{Min: 5, Shape: 1, Resources: 1, Label: "biglab-exp1"},
				{Min: 5, Shape: 1, Resources: 1, Label: "biglab-exp2"},
			},
		},
		{
			Name:    "Crowded",
			Classes: []allocation.Class{{Label: "Crowded", Count: 8, Capacity: 2}},
			Requests: []allocation.Request{
				{Min: 4, Shape: 1, Resources: 1, Label: "crowded-exp1"},
				{Min: 4, Shape: 1, Resources: 1, Label: "crowded-exp2"},
				{Min: 4, Shape: 1, Resources: 1, Label: "crowded-exp3"},
				{Min: 4, Shape: 1, Resources: 1, Label: "crowded-exp4"},
				{Min: 10, Shape: 1, Resources: 1, Label: "crowded-exp5"},
			},
		},
		{
			Name:    "Tiny",
			Classes: []allocation.Class{{Label: "Tiny", Count: 2, Capacity: 2}},
			Requests: []allocation.Request{
				{Min: 12, Shape: 1, Resources: 1, Label: "tiny-needs-diversity"},
			},
		},
	}

	res, err := allocation.SolveP2P(facilities)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("P2P federation: user utility, standalone vs federated")
	fmt.Println()
	totalStandalone, totalFederated := 0.0, 0.0
	for i, f := range facilities {
		gain := res.Federated[i] - res.Standalone[i]
		fmt.Printf("  %-8s standalone %7.1f   federated %7.1f   gain %+6.1f   share %5.1f%%\n",
			f.Name, res.Standalone[i], res.Federated[i], gain, res.Shares[i]*100)
		totalStandalone += res.Standalone[i]
		totalFederated += res.Federated[i]
	}
	fmt.Printf("\n  federation surplus: %.1f -> %.1f (%.0f%% gain)\n",
		totalStandalone, totalFederated,
		100*(totalFederated-totalStandalone)/totalStandalone)

	fmt.Println("\nper-experiment placement (locations assigned):")
	for i, f := range facilities {
		for j, r := range f.Requests {
			status := "served"
			if res.X[i][j] == 0 {
				status = "rejected"
			}
			fmt.Printf("  %-22s min=%2d  got=%2d  (%s)\n", r.Label, r.Min, res.X[i][j], status)
		}
	}

	fmt.Println("\nEvery facility's users do at least as well as standalone — the")
	fmt.Println("individual-rationality constraint of the paper's problem (3) holds by")
	fmt.Println("construction, and Tiny's diversity-hungry experiment only runs because")
	fmt.Println("the federation pools 40 distinct locations.")
}
