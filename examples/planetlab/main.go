// PlanetLab federation example: PLC, PLE and PLJ run SFA registries over
// loopback TCP, peer with each other, embed a federated slice that no single
// authority could host, and agree on Shapley value shares — the paper's
// deployment story end to end.
package main

import (
	"fmt"
	"log"
	"math"
	"sort"
	"time"

	"fedshare/internal/economics"
	"fedshare/internal/planetlab"
	"fedshare/internal/sfa"
)

var secret = []byte("onelab-federation-root")

func buildAuthority(name string, sites, nodesPerSite, capacity int) *planetlab.Authority {
	a := planetlab.NewAuthority(name)
	for s := 0; s < sites; s++ {
		site := &planetlab.Site{
			ID:   fmt.Sprintf("%s-site%02d", name, s),
			Name: fmt.Sprintf("%s site %d", name, s),
		}
		for n := 0; n < nodesPerSite; n++ {
			site.Nodes = append(site.Nodes, planetlab.Node{
				ID:       fmt.Sprintf("node%d", n),
				HostName: fmt.Sprintf("node%d.s%02d.%s.example.net", n, s, name),
				Capacity: capacity,
			})
		}
		if err := a.AddSite(site); err != nil {
			log.Fatal(err)
		}
	}
	return a
}

func main() {
	quiet := func(string, ...interface{}) {}

	// Demand profile used for share computation: one experiment spanning
	// at least 10 sites.
	demand, err := economics.NewWorkload(economics.DemandClass{
		Type: economics.ExperimentType{
			Name: "global-overlay", MinLocations: 10, MaxLocations: math.Inf(1),
			Resources: 1, HoldingTime: 1, Shape: 1,
		},
		Count: 1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Three regional authorities of very different sizes (à la Fig 4, at
	// 1:100 scale: 1, 4 and 8 sites).
	servers := map[string]*sfa.Server{}
	for name, sites := range map[string]int{"PLC": 1, "PLE": 4, "PLJ": 8} {
		srv := sfa.NewServer(buildAuthority(name, sites, 2, 5), secret,
			sfa.WithLogger(quiet), sfa.WithDemand(demand))
		if err := srv.Start("127.0.0.1:0"); err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		servers[name] = srv
		fmt.Printf("%s registry listening on %s (%d sites)\n", name, srv.Addr(), sites)
	}

	// Full-mesh peering.
	names := []string{"PLC", "PLE", "PLJ"}
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			if err := servers[names[i]].PeerWith(servers[names[j]].Addr()); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Println("\nfull-mesh peering established")

	// A researcher affiliated with PLC wants a slice across 10 sites — far
	// beyond PLC's single site.
	client, err := sfa.Dial(servers["PLC"].Addr(), 5*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	cred := sfa.IssueCredential(secret, "alice", "PLC", time.Minute)

	var slice sfa.SliceResponse
	if err := client.Call(sfa.MethodCreateSlice, sfa.SliceRequest{
		Credential: cred, Name: "global-overlay", Owner: "alice", MinSites: 10,
	}, &slice); err != nil {
		log.Fatal(err)
	}
	perAuthority := map[string]int{}
	for _, sv := range slice.Slivers {
		perAuthority[sv.Authority]++
	}
	fmt.Printf("\nslice %q embedded on %d sites:\n", slice.Name, slice.Sites)
	for _, n := range names {
		fmt.Printf("  %s contributes %d slivers\n", n, perAuthority[n])
	}

	// Ask each authority for the Shapley shares; they all agree, because
	// the computation runs over the same advertised contributions.
	fmt.Println("\nvalue shares (policy = shapley):")
	var resp sfa.SharesResponse
	if err := client.Call(sfa.MethodGetShares, sfa.SharesRequest{Policy: "shapley"}, &resp); err != nil {
		log.Fatal(err)
	}
	keys := make([]string, 0, len(resp.Shares))
	for k := range resp.Shares {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Printf("  %-4s %6.2f%%\n", k, resp.Shares[k]*100)
	}
	fmt.Printf("federation value: %.0f site-slots\n", resp.GrandValue)

	// Compare with the proportional rule over the wire.
	var prop sfa.SharesResponse
	if err := client.Call(sfa.MethodGetShares, sfa.SharesRequest{Policy: "proportional"}, &prop); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nvalue shares (policy = proportional):")
	for _, k := range keys {
		fmt.Printf("  %-4s %6.2f%%\n", k, prop.Shares[k]*100)
	}

	// Tear the slice down; capacity returns everywhere.
	if err := client.Call(sfa.MethodDeleteSlice, sfa.DeleteRequest{Credential: cred, Name: "global-overlay"}, nil); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nslice deleted; federated capacity released")
}
