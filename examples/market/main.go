// Market example (Sec. 5): compare the paper's Shapley-based sharing
// against the market baselines — a GridEcon-style spot market and a
// Bellagio-style combinatorial auction — under two demand regimes.
//
// When capacity is the binding constraint (plentiful low-threshold demand),
// the coalition game is additive and every rule — Shapley, proportional,
// markets — agrees. When diversity is the binding constraint (scarce,
// threshold-heavy demand), the mechanisms diverge: the spot market clears
// at price zero (the paper's under-provisioning caveat), the auction pays
// by consumption, and only the Shapley value prices each facility's
// marginal contribution.
package main

import (
	"fmt"
	"log"
	"math"

	"fedshare/internal/allocation"
	"fedshare/internal/core"
	"fedshare/internal/demand"
	"fedshare/internal/economics"
	"fedshare/internal/market"
)

var facilities = []core.Facility{
	{Name: "PLC", Locations: 100, Resources: 1},
	{Name: "PLE", Locations: 400, Resources: 1},
	{Name: "PLJ", Locations: 800, Resources: 1},
}

func pool() allocation.Pool {
	var p allocation.Pool
	for _, f := range facilities {
		p.Classes = append(p.Classes, allocation.Class{
			Label: f.Name, Count: f.Locations, Capacity: f.Resources,
		})
	}
	return p
}

func compare(title string, wl *economics.Workload) {
	model, err := core.NewModel(facilities, wl)
	if err != nil {
		log.Fatal(err)
	}
	shapley, err := core.ShapleyPolicy{}.Shares(model)
	if err != nil {
		log.Fatal(err)
	}
	proportional, err := core.ProportionalPolicy{}.Shares(model)
	if err != nil {
		log.Fatal(err)
	}
	var bids []market.Bid
	for _, c := range wl.Classes {
		for k := 0; k < c.Count; k++ {
			bids = append(bids, market.NewBid(c.Type.Name,
				int(c.Type.MinLocations), c.Type.Shape, c.Type.Resources))
		}
	}
	spot, err := market.ClearSpot(pool(), bids)
	if err != nil {
		log.Fatal(err)
	}
	auction, err := market.RunCombinatorial(pool(), bids)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s (V(N) = %.0f)\n", title, model.GrandValue())
	fmt.Printf("  %-22s %8s %8s %8s\n", "rule", "PLC", "PLE", "PLJ")
	row := func(name string, s []float64) {
		fmt.Printf("  %-22s %7.1f%% %7.1f%% %7.1f%%\n", name, s[0]*100, s[1]*100, s[2]*100)
	}
	row("shapley", shapley)
	row("proportional", proportional)
	row("spot market", market.Shares(spot.RevenueByClass))
	row("combinatorial auction", market.Shares(auction.RevenueByClass))
	fmt.Printf("  spot price %.2f (%d slots traded, %d stranded); auction welfare %.0f\n\n",
		spot.Price, spot.SlotsTraded, spot.Stranded, auction.Welfare)
}

func main() {
	// The demand mixture, estimated from a synthetic usage trace (the
	// stand-in for the paper's CoMon analysis [23]).
	obs, err := demand.Generate(demand.TraceConfig{Count: 400, Seed: 17})
	if err != nil {
		log.Fatal(err)
	}
	estimated, err := demand.Estimate(obs, []economics.ExperimentType{
		economics.P2PExperiment, economics.CDNService, economics.MeasurementExperiment,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("estimated demand mixture from a 400-experiment trace:")
	for _, s := range demand.Summarize(estimated) {
		fmt.Printf("  %-12s %4d experiments (%4.1f%%)\n", s.Name, s.Count, s.Fraction*100)
	}
	fmt.Println()

	// Regime 1 — capacity-bound: plenty of easy (l = 40) experiments.
	// Every coalition fills its capacity, the game is additive, and all
	// four rules coincide.
	p2p := economics.P2PExperiment
	p2p.Resources = 1
	capacityBound, err := economics.NewWorkload(economics.DemandClass{Type: p2p, Count: 40})
	if err != nil {
		log.Fatal(err)
	}
	compare("regime 1 — capacity-bound demand (40 p2p experiments, l = 40)", capacityBound)

	// Regime 2 — diversity-bound: one measurement study needing 500
	// distinct locations (scaled from the trace's dominant high-threshold
	// class). Marginal contributions now differ sharply from capacity.
	meas := economics.ExperimentType{
		Name: "measurement", MinLocations: 500, MaxLocations: math.Inf(1),
		Resources: 1, HoldingTime: 1, Shape: 1,
	}
	diversityBound, err := economics.NewWorkload(economics.DemandClass{Type: meas, Count: 1})
	if err != nil {
		log.Fatal(err)
	}
	compare("regime 2 — diversity-bound demand (one l = 500 measurement study)", diversityBound)

	fmt.Println("Reading the two regimes (the Sec. 5 comparison, quantified):")
	fmt.Println(" - capacity-bound: the coalition game is additive; Shapley equals the")
	fmt.Println("   proportional rule and both markets — nothing to argue about.")
	fmt.Println(" - diversity-bound: the spot market sees no scarcity in fungible slots")
	fmt.Println("   and clears at price zero (under-provisioning caveat); the auction")
	fmt.Println("   pays whichever facilities happen to host the winning 500-location")
	fmt.Println("   bundle — here PLC+PLE collect everything and PLJ, the single most")
	fmt.Println("   valuable partner, is paid nothing; only the Shapley value reflects")
	fmt.Println("   marginal contributions (PLE is worth 21.8%, not its 30.8% weight,")
	fmt.Println("   and PLJ 67.9%).")
}
